//! The ratcheting baseline.
//!
//! The workspace predates the linter, so hundreds of findings are
//! grandfathered in `lint-baseline.txt`. The ratchet's contract:
//!
//! * a finding **not** in the baseline fails the build (no new debt);
//! * a baseline entry with no matching finding **also** fails the
//!   build (paid-off debt must be struck from the ledger, so counts
//!   only ever go down);
//! * `--update-baseline` rewrites the file from the current findings.
//!
//! Entries are fingerprinted by rule + path + a hash of the trimmed
//! source line (+ an occurrence index for identical lines), **not** by
//! line number — pure line drift from unrelated edits never churns
//! the baseline.

use crate::rules::{Finding, Rule, ALL_RULES};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One grandfathered finding.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct BaselineEntry {
    /// Which rule.
    pub rule: Rule,
    /// Workspace-relative path.
    pub path: String,
    /// FNV-1a 64 of the trimmed source line, as 16 hex digits.
    pub hash: String,
    /// Which occurrence of (rule, path, hash) this is, 0-based —
    /// distinguishes identical lines in one file.
    pub occurrence: usize,
}

/// FNV-1a 64-bit, hex-encoded: stable, dependency-free, and plenty for
/// distinguishing source lines within one file.
pub fn fingerprint(excerpt: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in excerpt.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// Key findings by (rule, path, hash), assigning occurrence indices in
/// scan order.
pub fn keyed(findings: &[Finding]) -> Vec<(BaselineEntry, &Finding)> {
    let mut seen: BTreeMap<(Rule, &str, String), usize> = BTreeMap::new();
    findings
        .iter()
        .map(|f| {
            let hash = fingerprint(&f.excerpt);
            let n = seen
                .entry((f.rule, f.path.as_str(), hash.clone()))
                .or_insert(0);
            let entry = BaselineEntry {
                rule: f.rule,
                path: f.path.clone(),
                hash,
                occurrence: *n,
            };
            *n += 1;
            (entry, f)
        })
        .collect()
}

/// Render the baseline file from current findings (scan order: path,
/// then line — stable because the scan itself is).
pub fn render(findings: &[Finding]) -> String {
    let mut out = String::from(
        "# drywells-lint baseline: grandfathered findings, one per line.\n\
         # Format: RULE PATH HASH#OCCURRENCE EXCERPT (excerpt is informational).\n\
         # Managed by `repro lint --update-baseline`. The ratchet only turns one\n\
         # way: new findings fail the build, and so do stale entries here, so\n\
         # these counts can only go down.\n",
    );
    for (entry, f) in keyed(findings) {
        let _ = writeln!(
            out,
            "{} {} {}#{} {}",
            entry.rule.id(),
            entry.path,
            entry.hash,
            entry.occurrence,
            f.excerpt
        );
    }
    out
}

/// Parse a baseline file. Unparseable lines are returned as errors so
/// a corrupted baseline fails loudly instead of silently accepting
/// findings.
pub fn parse(text: &str) -> Result<Vec<BaselineEntry>, Vec<String>> {
    let mut entries = Vec::new();
    let mut errors = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(4, ' ');
        let parsed = (|| {
            let rule = Rule::parse(parts.next()?)?;
            let path = parts.next()?.to_string();
            let (hash, occ) = parts.next()?.split_once('#')?;
            if hash.len() != 16 || !hash.bytes().all(|b| b.is_ascii_hexdigit()) {
                return None;
            }
            let occurrence = occ.parse().ok()?;
            Some(BaselineEntry {
                rule,
                path,
                hash: hash.to_string(),
                occurrence,
            })
        })();
        match parsed {
            Some(e) => entries.push(e),
            None => errors.push(format!("baseline line {}: unparseable: {raw}", idx + 1)),
        }
    }
    if errors.is_empty() {
        Ok(entries)
    } else {
        Err(errors)
    }
}

/// The ratchet verdict for one run.
pub struct Ratchet<'a> {
    /// Findings not covered by the baseline — each fails the build.
    pub new: Vec<&'a Finding>,
    /// Baseline entries whose finding no longer exists — also fail.
    pub stale: Vec<BaselineEntry>,
    /// Per-rule (baselined, new) counts, in [`ALL_RULES`] order.
    pub per_rule: Vec<(Rule, usize, usize)>,
}

impl Ratchet<'_> {
    /// Does this run pass the gate?
    pub fn clean(&self) -> bool {
        self.new.is_empty() && self.stale.is_empty()
    }

    /// Total baselined findings.
    pub fn baselined(&self) -> usize {
        self.per_rule.iter().map(|(_, b, _)| b).sum()
    }
}

/// Compare current findings against the baseline.
pub fn ratchet<'a>(findings: &'a [Finding], baseline: &[BaselineEntry]) -> Ratchet<'a> {
    let mut unmatched: BTreeMap<&BaselineEntry, bool> =
        baseline.iter().map(|e| (e, false)).collect();
    let mut new = Vec::new();
    let mut counts: BTreeMap<Rule, (usize, usize)> = BTreeMap::new();
    for (entry, finding) in keyed(findings) {
        let c = counts.entry(finding.rule).or_default();
        match unmatched.get_mut(&entry) {
            Some(used) => {
                *used = true;
                c.0 += 1;
            }
            None => {
                c.1 += 1;
                new.push(finding);
            }
        }
    }
    let stale = unmatched
        .into_iter()
        .filter(|(_, used)| !used)
        .map(|(e, _)| e.clone())
        .collect();
    let per_rule = ALL_RULES
        .iter()
        .map(|&r| {
            let (b, n) = counts.get(&r).copied().unwrap_or_default();
            (r, b, n)
        })
        .collect();
    Ratchet {
        new,
        stale,
        per_rule,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: Rule, path: &str, line: usize, excerpt: &str) -> Finding {
        Finding {
            rule,
            path: path.to_string(),
            line,
            excerpt: excerpt.to_string(),
            message: String::new(),
        }
    }

    #[test]
    fn render_parse_roundtrip() {
        let findings = vec![
            finding(Rule::L2, "crates/a/src/lib.rs", 3, "x.unwrap();"),
            finding(Rule::L2, "crates/a/src/lib.rs", 9, "x.unwrap();"),
            finding(Rule::L1, "crates/b/src/lib.rs", 1, "n as u16"),
        ];
        let text = render(&findings);
        let parsed = parse(&text).expect("roundtrip parses");
        assert_eq!(parsed.len(), 3);
        // Identical lines get distinct occurrence indices.
        assert_eq!(parsed[0].occurrence, 0);
        assert_eq!(parsed[1].occurrence, 1);
        let verdict = ratchet(&findings, &parsed);
        assert!(verdict.clean());
        assert_eq!(verdict.baselined(), 3);
    }

    #[test]
    fn new_finding_fails_and_is_line_drift_immune() {
        let before = vec![finding(Rule::L2, "crates/a/src/lib.rs", 3, "x.unwrap();")];
        let baseline = parse(&render(&before)).expect("parses");
        // Same line, different line number: still baselined.
        let drifted = vec![finding(Rule::L2, "crates/a/src/lib.rs", 40, "x.unwrap();")];
        assert!(ratchet(&drifted, &baseline).clean());
        // A second unwrap: one new finding.
        let grown = vec![
            finding(Rule::L2, "crates/a/src/lib.rs", 40, "x.unwrap();"),
            finding(Rule::L2, "crates/a/src/lib.rs", 41, "y.unwrap();"),
        ];
        let verdict = ratchet(&grown, &baseline);
        assert_eq!(verdict.new.len(), 1);
        assert_eq!(verdict.new[0].line, 41);
    }

    #[test]
    fn fixed_finding_makes_entry_stale() {
        let before = vec![
            finding(Rule::L2, "crates/a/src/lib.rs", 3, "x.unwrap();"),
            finding(Rule::L1, "crates/a/src/lib.rs", 5, "n as u8"),
        ];
        let baseline = parse(&render(&before)).expect("parses");
        let after = vec![finding(Rule::L1, "crates/a/src/lib.rs", 5, "n as u8")];
        let verdict = ratchet(&after, &baseline);
        assert!(!verdict.clean());
        assert_eq!(verdict.stale.len(), 1);
        assert_eq!(verdict.stale[0].rule, Rule::L2);
    }

    #[test]
    fn corrupt_baseline_lines_are_errors() {
        assert!(parse("L9 nope zz#0 what\n").is_err());
        assert!(parse("L1 only-two-fields\n").is_err());
        assert!(parse("# comment\n\nL1 p 0123456789abcdef#0 e\n").is_ok());
    }
}
