//! Per-function flow analyses behind L8 (atomic-ordering), L9
//! (determinism-flow), and L10 (error-swallowing).
//!
//! These walk the token stream through the item tree rather than
//! pattern-matching lines, so they can ask questions like "does this
//! function write non-atomic state before a Relaxed store?" or "does
//! this HashMap's iteration order ever reach an output sink?". They
//! are still approximations — resolution is name-based within one
//! file — but the approximation direction is chosen per rule: L8 and
//! L9 only fire on positive evidence of a hazardous *pair* (write +
//! Relaxed store, iteration + sink), so refactoring that separates
//! the pair genuinely clears the finding.

use crate::ast::ItemTree;
use crate::lexer::{matching, Lexed, TokenKind};
use std::collections::{BTreeMap, BTreeSet};

/// Atomic RMW/load/store method names.
const ATOMIC_METHODS: [&str; 14] = [
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_nand",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

const ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Iterator-producing methods on hash collections.
const ITER_METHODS: [&str; 7] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "drain",
];

/// Macro names that emit formatted output (a sink when fed hash
/// iteration order).
const SINK_MACROS: [&str; 6] = ["write", "writeln", "print", "println", "format", "eprintln"];

/// Method names that move data into an emitted buffer or encoder.
fn is_sink_method(name: &str) -> bool {
    matches!(
        name,
        "push" | "push_str" | "extend" | "write_all" | "serialize"
    ) || name.starts_with("put_")
        || name.starts_with("encode")
}

/// One atomic operation site.
struct AtomicOp {
    receiver: String,
    method: String,
    orderings: Vec<String>,
    line: usize,
}

/// L8 — atomic-ordering findings: `(line, message)`.
///
/// Two shapes:
/// * a `store(_, Ordering::Relaxed)` in a function that also writes
///   non-atomic shared state (a `self.…`/`*…` assignment) before the
///   store — the classic unpublished-data race; needs `Release`;
/// * any `SeqCst` operation in a function whose atomic footprint is a
///   single variable — sequential consistency orders *across*
///   atomics, so with one atomic it only buys cost.
pub fn atomic_findings(lexed: &Lexed<'_>, tree: &ItemTree) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for f in tree.functions() {
        if f.cfg_test {
            continue;
        }
        let (ops, shared_writes) = scan_fn_atomics(lexed, f.body.0 + 1, f.body.1);
        if ops.is_empty() {
            continue;
        }
        let receivers: BTreeSet<&str> = ops.iter().map(|o| o.receiver.as_str()).collect();
        for op in &ops {
            let relaxed = op.orderings.iter().any(|o| o == "Relaxed");
            let seqcst = op.orderings.iter().any(|o| o == "SeqCst");
            if op.method == "store" && relaxed {
                if let Some(&w) = shared_writes.iter().find(|&&w| w < op.line) {
                    out.push((
                        op.line,
                        format!(
                            "`{}.store(_, Ordering::Relaxed)` publishes non-atomic state \
                             written at line {w}; a reader that Acquire-loads the flag \
                             may still miss the data — store with `Ordering::Release`",
                            op.receiver
                        ),
                    ));
                    continue;
                }
            }
            if seqcst && receivers.len() == 1 {
                out.push((
                    op.line,
                    format!(
                        "`SeqCst` on `{}`, the only atomic this function touches: \
                         sequential consistency only orders operations across \
                         *different* atomics; `Acquire`/`Release` (or `Relaxed` for \
                         a pure counter) suffices",
                        op.receiver
                    ),
                ));
            }
        }
    }
    out.sort_unstable_by_key(|(l, _)| *l);
    out
}

/// Atomic ops and non-atomic shared-write lines within a token range.
fn scan_fn_atomics(lexed: &Lexed<'_>, from: usize, to: usize) -> (Vec<AtomicOp>, Vec<usize>) {
    let toks = &lexed.tokens;
    let mut ops = Vec::new();
    let mut writes = Vec::new();
    let mut i = from;
    while i < to {
        match toks[i].kind {
            TokenKind::Ident => {
                let w = lexed.text(i);
                if ATOMIC_METHODS.contains(&w)
                    && i > from
                    && lexed.is_punct(i - 1, b'.')
                    && i + 1 < to
                    && lexed.is_punct(i + 1, b'(')
                {
                    if let Some(close) = matching(toks, i + 1).filter(|&c| c <= to) {
                        let orderings: Vec<String> = (i + 2..close)
                            .filter(|&j| {
                                toks[j].kind == TokenKind::Ident
                                    && ORDERINGS.contains(&lexed.text(j))
                            })
                            .map(|j| lexed.text(j).to_string())
                            .collect();
                        // Only calls that actually name an ordering are
                        // atomic ops — keeps `Vec::swap`, serde `load`,
                        // etc. out of the table.
                        if !orderings.is_empty() {
                            ops.push(AtomicOp {
                                receiver: receiver_chain(lexed, i - 1, from),
                                method: w.to_string(),
                                orderings,
                                line: toks[i].line,
                            });
                        }
                        i = close + 1;
                        continue;
                    }
                }
                i += 1;
            }
            TokenKind::Punct(b'=') => {
                // A plain assignment (not ==, <=, +=, …): check the
                // statement's left side for shared state.
                let prev_op = i > from
                    && matches!(
                        toks[i - 1].kind,
                        TokenKind::Punct(b'=')
                            | TokenKind::Punct(b'!')
                            | TokenKind::Punct(b'<')
                            | TokenKind::Punct(b'>')
                            | TokenKind::Punct(b'+')
                            | TokenKind::Punct(b'-')
                            | TokenKind::Punct(b'*')
                            | TokenKind::Punct(b'/')
                            | TokenKind::Punct(b'&')
                            | TokenKind::Punct(b'|')
                            | TokenKind::Punct(b'^')
                            | TokenKind::Punct(b'%')
                    );
                let next_eq = i + 1 < to && lexed.is_punct(i + 1, b'=');
                if !prev_op && !next_eq && lhs_is_shared(lexed, i, from) {
                    writes.push(toks[i].line);
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    (ops, writes)
}

/// Does the statement left of the `=` at `eq` write through `self` or
/// a deref — i.e. potentially shared state rather than a local?
fn lhs_is_shared(lexed: &Lexed<'_>, eq: usize, floor: usize) -> bool {
    let toks = &lexed.tokens;
    let mut j = eq;
    let mut saw_self = false;
    let mut first = eq;
    while j > floor {
        j -= 1;
        match toks[j].kind {
            TokenKind::Punct(b';') | TokenKind::Punct(b'{') | TokenKind::Punct(b'}') => break,
            TokenKind::Ident => {
                let w = lexed.text(j);
                if w == "let" {
                    return false; // a local binding, not a write
                }
                if w == "self" {
                    saw_self = true;
                }
                first = j;
            }
            _ => first = j,
        }
    }
    saw_self || toks[first].kind == TokenKind::Punct(b'*')
}

/// The dotted receiver chain ending at the `.` at `dot`, rendered as
/// text (`self.count`, `GLOBAL`, …).
fn receiver_chain(lexed: &Lexed<'_>, dot: usize, floor: usize) -> String {
    let toks = &lexed.tokens;
    let mut parts: Vec<&str> = Vec::new();
    let mut j = dot;
    while j > floor {
        let k = j - 1;
        if toks[k].kind != TokenKind::Ident {
            break;
        }
        parts.push(lexed.text(k));
        j = k;
        if j > floor && toks[j - 1].kind == TokenKind::Punct(b'.') {
            j -= 1;
        } else {
            break;
        }
    }
    parts.reverse();
    parts.join(".")
}

/// L9 — determinism-flow findings: `(line, "HashMap" | "HashSet")`.
///
/// A finding anchors at every declaration/mention line of a hash
/// collection *symbol* whose iteration order can reach an output
/// sink; symbols that are only keyed into (lookups, inserts,
/// membership) never fire. This keeps finding lines a subset of the
/// retired L4's mention lines, so surviving fingerprints are stable.
pub fn hash_flow_findings(lexed: &Lexed<'_>, tree: &ItemTree) -> Vec<(usize, &'static str)> {
    let toks = &lexed.tokens;
    let test_spans = tree.test_lines();
    let in_test =
        |line: usize| test_spans.iter().any(|&(a, b)| line >= a && line <= b);

    // 1. Every HashMap/HashSet mention, resolved to a symbol where
    //    possible. `use` imports are tracked separately: they fire iff
    //    any symbol in the file is tainted.
    let mut symbol_mentions: BTreeMap<String, Vec<(usize, &'static str)>> = BTreeMap::new();
    let mut import_mentions: Vec<(usize, &'static str)> = Vec::new();
    let mut symbols: BTreeSet<String> = BTreeSet::new();
    for i in 0..toks.len() {
        if toks[i].kind != TokenKind::Ident {
            continue;
        }
        let kind: &'static str = match lexed.text(i) {
            "HashMap" => "HashMap",
            "HashSet" => "HashSet",
            _ => continue,
        };
        let line = toks[i].line;
        match classify_mention(lexed, i) {
            Mention::Import => import_mentions.push((line, kind)),
            Mention::Symbol(sym) => {
                symbols.insert(sym.clone());
                symbol_mentions.entry(sym).or_default().push((line, kind));
            }
            Mention::Unresolved => {}
        }
    }
    if symbols.is_empty() {
        return Vec::new();
    }

    // 2. Taint: any hazardous iteration of the symbol anywhere in the
    //    file (outside test code).
    let mut tainted: BTreeSet<&str> = BTreeSet::new();
    for sym in &symbols {
        if has_hazardous_iteration(lexed, sym, &in_test) {
            tainted.insert(sym);
        }
    }
    if tainted.is_empty() {
        return Vec::new();
    }

    let mut out: Vec<(usize, &'static str)> = Vec::new();
    for (sym, mentions) in &symbol_mentions {
        if tainted.contains(sym.as_str()) {
            out.extend(mentions.iter().copied());
        }
    }
    out.extend(import_mentions);
    out.sort_unstable();
    out.dedup();
    out
}

enum Mention {
    Import,
    Symbol(String),
    Unresolved,
}

/// What does the HashMap/HashSet ident at token `at` declare?
/// Walks back to the statement boundary looking for `name :` (a
/// field, parameter, or typed let), stopping at `->` (a return type
/// declares no symbol); falls back to the `let` binding when the
/// mention sits in a let's right-hand side (`let m = HashMap::new()`).
fn classify_mention(lexed: &Lexed<'_>, at: usize) -> Mention {
    let toks = &lexed.tokens;
    // Find the statement start.
    let mut s = at;
    while s > 0 {
        match toks[s - 1].kind {
            TokenKind::Punct(b';') | TokenKind::Punct(b'{') | TokenKind::Punct(b'}') => break,
            _ => s -= 1,
        }
    }
    if toks[s].kind == TokenKind::Ident && lexed.text(s) == "use" {
        return Mention::Import;
    }
    // Back-scan for `name :` — skipping `::` pairs.
    let mut k = at;
    while k > s {
        k -= 1;
        match toks[k].kind {
            TokenKind::Punct(b':') => {
                if k > s && toks[k - 1].kind == TokenKind::Punct(b':') {
                    k -= 1; // `::` path separator
                    continue;
                }
                if k + 1 < toks.len() && toks[k + 1].kind == TokenKind::Punct(b':') {
                    continue; // first colon of `::`, already stepped past
                }
                if k > s && toks[k - 1].kind == TokenKind::Ident {
                    let name = lexed.text(k - 1);
                    if name != "let" && name != "mut" {
                        return Mention::Symbol(name.to_string());
                    }
                }
                return Mention::Unresolved;
            }
            TokenKind::Punct(b'>') if k > s && toks[k - 1].kind == TokenKind::Punct(b'-') => {
                return Mention::Unresolved; // `-> HashMap<..>` return type
            }
            _ => {}
        }
    }
    // `let [mut] name = … HashMap …`.
    if toks[s].kind == TokenKind::Ident && lexed.text(s) == "let" {
        let mut j = s + 1;
        while j < at && toks[j].kind == TokenKind::Ident && lexed.text(j) == "mut" {
            j += 1;
        }
        if j < at && toks[j].kind == TokenKind::Ident {
            let name = lexed.text(j);
            if name != "_" {
                return Mention::Symbol(name.to_string());
            }
        }
    }
    Mention::Unresolved
}

/// Does iteration order of `sym` reach a sink anywhere in the file?
fn has_hazardous_iteration(
    lexed: &Lexed<'_>,
    sym: &str,
    in_test: &dyn Fn(usize) -> bool,
) -> bool {
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        if toks[i].kind != TokenKind::Ident || in_test(toks[i].line) {
            continue;
        }
        let w = lexed.text(i);
        // `for pat in …sym… { body }` — hazardous if the body emits.
        if w == "for" {
            if let Some((expr_from, body_open)) = for_header(lexed, i) {
                let names_sym = (expr_from..body_open).any(|j| {
                    toks[j].kind == TokenKind::Ident && lexed.text(j) == sym
                });
                if names_sym {
                    if let Some(body_close) = matching(toks, body_open) {
                        if range_has_sink(lexed, body_open + 1, body_close) {
                            return true;
                        }
                    }
                }
            }
            continue;
        }
        // `sym.iter()` / `.keys()` / … — hazardous if the enclosing
        // statement emits, float-sums, or collects into an ordered
        // container that is never sorted.
        if w == sym
            && i + 2 < toks.len()
            && lexed.is_punct(i + 1, b'.')
            && toks[i + 2].kind == TokenKind::Ident
            && ITER_METHODS.contains(&lexed.text(i + 2))
            && i + 3 < toks.len()
            && lexed.is_punct(i + 3, b'(')
        {
            if statement_is_hazardous(lexed, i) {
                return true;
            }
        }
    }
    false
}

/// For a `for` keyword at `i`, the token range of its iterable
/// expression (just past `in`) and the body's `{`.
fn for_header(lexed: &Lexed<'_>, i: usize) -> Option<(usize, usize)> {
    let toks = &lexed.tokens;
    let mut j = i + 1;
    let mut in_at = None;
    while j < toks.len() {
        match toks[j].kind {
            TokenKind::Ident if lexed.text(j) == "in" && in_at.is_none() => in_at = Some(j),
            TokenKind::Punct(b'{') => return in_at.map(|a| (a + 1, j)),
            TokenKind::Punct(b';') | TokenKind::Punct(b'}') => return None,
            _ => {}
        }
        j += 1;
    }
    None
}

/// Does the token range contain an output sink (formatting macro or
/// buffer/encoder method call)?
fn range_has_sink(lexed: &Lexed<'_>, from: usize, to: usize) -> bool {
    let toks = &lexed.tokens;
    for j in from..to {
        if toks[j].kind != TokenKind::Ident {
            continue;
        }
        let w = lexed.text(j);
        if SINK_MACROS.contains(&w) && j + 1 < to && lexed.is_punct(j + 1, b'!') {
            return true;
        }
        if is_sink_method(w) && j > from && lexed.is_punct(j - 1, b'.') {
            return true;
        }
    }
    false
}

/// Hazard analysis for the statement containing the iteration that
/// starts at token `i` (the symbol ident of `sym.iter()…`).
fn statement_is_hazardous(lexed: &Lexed<'_>, i: usize) -> bool {
    let toks = &lexed.tokens;
    // Statement extent: back to the previous `;`/`{`/`}`, forward to
    // the next `;` (stepping over nested delimiters).
    let mut s = i;
    while s > 0 {
        match toks[s - 1].kind {
            TokenKind::Punct(b';') | TokenKind::Punct(b'{') | TokenKind::Punct(b'}') => break,
            _ => s -= 1,
        }
    }
    let mut e = i;
    while e < toks.len() {
        match toks[e].kind {
            TokenKind::Punct(b'(') | TokenKind::Punct(b'[') | TokenKind::Punct(b'{') => {
                match matching(toks, e) {
                    Some(c) => e = c + 1,
                    None => break,
                }
            }
            TokenKind::Punct(b';') => break,
            _ => e += 1,
        }
    }

    // Float summation order is itself the hazard.
    for j in s..e.min(toks.len()) {
        if toks[j].kind == TokenKind::Ident
            && lexed.text(j) == "sum"
            && (s..e).any(|k| {
                toks[k].kind == TokenKind::Ident && matches!(lexed.text(k), "f64" | "f32")
            })
        {
            return true;
        }
    }

    if range_has_sink(lexed, s, e.min(toks.len())) {
        return true;
    }

    // `.collect::<Vec<_>>()` / `::<String>`: ordered container built
    // from hash order — hazardous unless the binding is sorted later.
    let mut collects_ordered = false;
    for j in s..e.min(toks.len()) {
        if toks[j].kind == TokenKind::Ident && lexed.text(j) == "collect" {
            let tail = (j..(j + 8).min(e)).any(|k| {
                toks[k].kind == TokenKind::Ident
                    && matches!(lexed.text(k), "Vec" | "String" | "VecDeque")
            });
            if tail {
                collects_ordered = true;
            }
        }
    }
    if collects_ordered {
        // `let v = …collect…;` followed by `v.sort…` anywhere after.
        if toks[s].kind == TokenKind::Ident && lexed.text(s) == "let" {
            let mut b = s + 1;
            while b < i && toks[b].kind == TokenKind::Ident && lexed.text(b) == "mut" {
                b += 1;
            }
            if b < i && toks[b].kind == TokenKind::Ident {
                let binding = lexed.text(b);
                for j in e..toks.len() {
                    if toks[j].kind == TokenKind::Ident
                        && lexed.text(j) == binding
                        && j + 2 < toks.len()
                        && lexed.is_punct(j + 1, b'.')
                        && toks[j + 2].kind == TokenKind::Ident
                        && lexed.text(j + 2).starts_with("sort")
                    {
                        return false; // sorted before any emission
                    }
                }
            }
        }
        return true;
    }
    false
}

/// L10 — swallowed-Result findings: `(line, what)`.
pub fn swallow_sites(lexed: &Lexed<'_>, _tree: &ItemTree) -> Vec<(usize, String)> {
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if toks[i].kind != TokenKind::Ident {
            continue;
        }
        let w = lexed.text(i);
        // `let _ = <call>;` — but not `let _ = write!(…)`, where the
        // `!` marks a macro whose Result the io-writer idiom already
        // accounts for.
        if w == "let"
            && (i == 0
                || matches!(
                    toks[i - 1].kind,
                    TokenKind::Punct(b';') | TokenKind::Punct(b'{') | TokenKind::Punct(b'}')
                ))
            && i + 2 < toks.len()
            && toks[i + 1].kind == TokenKind::Ident
            && lexed.text(i + 1) == "_"
            && lexed.is_punct(i + 2, b'=')
        {
            let mut has_call = false;
            let mut has_macro = false;
            let mut j = i + 3;
            while j < toks.len() {
                match toks[j].kind {
                    TokenKind::Punct(b';') => break,
                    TokenKind::Punct(b'(') => has_call = true,
                    TokenKind::Punct(b'!') => has_macro = true,
                    _ => {}
                }
                j += 1;
            }
            if has_call && !has_macro {
                out.push((toks[i].line, "`let _ = …` on a fallible call".to_string()));
            }
        }
        // Statement-level `….ok();` — the chain's Result vanishes.
        if w == "ok"
            && i > 0
            && lexed.is_punct(i - 1, b'.')
            && i + 3 < toks.len()
            && lexed.is_punct(i + 1, b'(')
            && lexed.is_punct(i + 2, b')')
            && lexed.is_punct(i + 3, b';')
        {
            out.push((toks[i].line, "statement-level `.ok()`".to_string()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse;
    use crate::lexer::lex;

    fn l8(src: &str) -> Vec<usize> {
        let lx = lex(src);
        let tree = parse(&lx);
        atomic_findings(&lx, &tree).into_iter().map(|(l, _)| l).collect()
    }

    fn l9(src: &str) -> Vec<usize> {
        let lx = lex(src);
        let tree = parse(&lx);
        hash_flow_findings(&lx, &tree)
            .into_iter()
            .map(|(l, _)| l)
            .collect()
    }

    fn l10(src: &str) -> Vec<usize> {
        let lx = lex(src);
        let tree = parse(&lx);
        swallow_sites(&lx, &tree).into_iter().map(|(l, _)| l).collect()
    }

    #[test]
    fn relaxed_publish_fires() {
        let src = "\
impl S {
    fn publish(&mut self, v: u64) {
        self.data = v;
        self.ready.store(true, Ordering::Relaxed);
    }
}
";
        assert_eq!(l8(src), vec![4]);
    }

    #[test]
    fn counter_relaxed_is_fine_and_release_store_is_fine() {
        let src = "\
impl S {
    fn bump(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }
    fn publish(&mut self, v: u64) {
        self.data = v;
        self.ready.store(true, Ordering::Release);
    }
}
";
        assert!(l8(src).is_empty());
    }

    #[test]
    fn seqcst_single_atomic_fires_two_atomics_exempt() {
        let one = "\
impl S {
    fn bump(&self) {
        self.hits.fetch_add(1, Ordering::SeqCst);
    }
}
";
        assert_eq!(l8(one), vec![3]);
        let two = "\
impl S {
    fn handoff(&self) {
        self.head.store(1, Ordering::SeqCst);
        let t = self.tail.load(Ordering::SeqCst);
        let _n = t;
    }
}
";
        assert!(l8(two).is_empty());
    }

    #[test]
    fn vec_swap_is_not_an_atomic_op() {
        let src = "\
fn f(v: &mut Vec<u8>) {
    v.swap(0, 1);
}
";
        assert!(l8(src).is_empty());
    }

    #[test]
    fn hash_to_csv_fires_on_all_mentions() {
        let src = "\
use std::collections::HashMap;
struct T { counts: HashMap<u32, u64> }
impl T {
    fn emit(&self, out: &mut String) {
        for (k, v) in self.counts.iter() {
            out.push_str(&format!(\"{k},{v}\\n\"));
        }
    }
}
";
        // Import line 1 + field decl line 2.
        assert_eq!(l9(src), vec![1, 2]);
    }

    #[test]
    fn keyed_cache_is_clean() {
        let src = "\
use std::collections::HashMap;
struct Cache { map: HashMap<u32, u64> }
impl Cache {
    fn get(&mut self, k: u32) -> u64 {
        if let Some(v) = self.map.get(&k) { return *v; }
        let v = compute(k);
        self.map.insert(k, v);
        v
    }
}
";
        assert!(l9(src).is_empty());
    }

    #[test]
    fn collect_to_vec_then_serialize_fires_but_sorted_is_clean() {
        let hazard = "\
use std::collections::HashMap;
fn dump(m: &HashMap<u32, u64>, out: &mut String) {
    let rows = m.iter().collect::<Vec<_>>();
    for (k, v) in rows {
        out.push_str(&format!(\"{k},{v}\\n\"));
    }
}
";
        assert_eq!(l9(hazard), vec![1, 2]);
        let sorted = "\
use std::collections::HashMap;
fn dump(m: &HashMap<u32, u64>, out: &mut String) {
    let mut rows = m.iter().collect::<Vec<_>>();
    rows.sort();
    for (k, v) in rows {
        out.push_str(&format!(\"{k},{v}\\n\"));
    }
}
";
        assert!(l9(sorted).is_empty());
    }

    #[test]
    fn float_sum_over_hash_iteration_fires() {
        let src = "\
use std::collections::HashMap;
fn total(m: &HashMap<u32, f64>) -> f64 {
    m.values().sum::<f64>()
}
";
        assert_eq!(l9(src), vec![1, 2]);
    }

    #[test]
    fn int_sum_and_len_are_order_free() {
        let src = "\
use std::collections::HashMap;
fn total(m: &HashMap<u32, u64>) -> u64 {
    let n = m.len() as u64;
    m.values().sum::<u64>() + n
}
";
        assert!(l9(src).is_empty());
    }

    #[test]
    fn iteration_in_tests_does_not_taint() {
        let src = "\
use std::collections::HashMap;
struct T { m: HashMap<u32, u64> }
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let t = super::T { m: Default::default() };
        for (k, v) in t.m.iter() { println!(\"{k}{v}\"); }
    }
}
";
        assert!(l9(src).is_empty());
    }

    #[test]
    fn swallowed_result_fires() {
        let src = "\
fn f(s: &std::net::TcpStream) {
    let _ = s.set_nodelay(true);
    s.shutdown(std::net::Shutdown::Both).ok();
}
";
        assert_eq!(l10(src), vec![2, 3]);
    }

    #[test]
    fn write_macro_and_plain_discard_are_fine() {
        let src = "\
fn f(out: &mut String, g: Guard) {
    let _ = write!(out, \"x\");
    let _ = g;
}
";
        assert!(l10(src).is_empty());
    }
}
