//! Standalone entry point for the workspace invariant linter.
//!
//! ```sh
//! drywells-lint                      # gate the workspace from any cwd inside it
//! drywells-lint --update-baseline    # rewrite lint-baseline.txt from current findings
//! drywells-lint --root DIR           # lint a different tree (used by the negative tests)
//! drywells-lint --baseline PATH      # non-default baseline location
//! drywells-lint --list               # print every finding, baselined or not
//! drywells-lint --format json        # SARIF-shaped report on stdout (CI artifact)
//! drywells-lint --explain L7         # the invariant a rule protects
//! ```
//!
//! Exit status: 0 when the ratchet is clean (no new findings, no stale
//! baseline entries), 1 otherwise. `repro lint` is the same gate wired
//! into the reproduction CLI.

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut update = false;
    let mut list = false;
    let mut json = false;
    let mut args = env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--update-baseline" => update = true,
            "--list" => list = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root needs a directory"),
            },
            "--baseline" => match args.next() {
                Some(path) => baseline = Some(PathBuf::from(path)),
                None => return usage("--baseline needs a path"),
            },
            "--format" => match args.next().as_deref() {
                Some("json") => json = true,
                Some("text") => json = false,
                Some(other) => {
                    return usage(&format!("unknown format {other:?} (json or text)"))
                }
                None => return usage("--format needs a value (json or text)"),
            },
            "--explain" => match args.next() {
                Some(id) => return explain(&id),
                None => return usage("--explain needs a rule id (L1…L10)"),
            },
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unexpected argument {other:?}")),
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("drywells-lint: no [workspace] Cargo.toml above {}", cwd.display());
                    return ExitCode::FAILURE;
                }
            }
        }
    };
    let baseline = baseline.unwrap_or_else(|| root.join(lint::BASELINE_FILE));

    if list {
        return match lint::collect_findings(&root) {
            Ok(findings) => {
                for f in &findings {
                    println!("{}:{}: {} {}", f.path, f.line, f.rule.id(), f.message);
                }
                println!("{} finding(s)", findings.len());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("drywells-lint: {e}");
                ExitCode::FAILURE
            }
        };
    }

    match lint::run(&root, &baseline, update) {
        Ok(report) => {
            if json {
                print!("{}", report.to_json());
            } else {
                print!("{}", report.render());
            }
            if report.ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("drywells-lint: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Print the invariant behind a rule id.
fn explain(id: &str) -> ExitCode {
    match lint::Rule::parse(id) {
        Some(rule) => {
            println!("{}", rule.explain());
            ExitCode::SUCCESS
        }
        None => {
            eprintln!(
                "drywells-lint: unknown rule {id:?}; known rules: {}",
                lint::ALL_RULES
                    .iter()
                    .map(|r| r.id())
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            ExitCode::FAILURE
        }
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("drywells-lint: {err}");
    }
    eprintln!(
        "usage: drywells-lint [--root DIR] [--baseline PATH] [--update-baseline] \
         [--list] [--format json|text] [--explain Ln]"
    );
    ExitCode::FAILURE
}
