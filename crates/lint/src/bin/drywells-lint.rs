//! Standalone entry point for the workspace invariant linter.
//!
//! ```sh
//! drywells-lint                      # gate the workspace from any cwd inside it
//! drywells-lint --update-baseline    # rewrite lint-baseline.txt from current findings
//! drywells-lint --root DIR           # lint a different tree (used by the negative tests)
//! drywells-lint --baseline PATH      # non-default baseline location
//! drywells-lint --list               # print every finding, baselined or not
//! ```
//!
//! Exit status: 0 when the ratchet is clean (no new findings, no stale
//! baseline entries), 1 otherwise. `repro lint` is the same gate wired
//! into the reproduction CLI.

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut update = false;
    let mut list = false;
    let mut args = env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--update-baseline" => update = true,
            "--list" => list = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root needs a directory"),
            },
            "--baseline" => match args.next() {
                Some(path) => baseline = Some(PathBuf::from(path)),
                None => return usage("--baseline needs a path"),
            },
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unexpected argument {other:?}")),
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("drywells-lint: no [workspace] Cargo.toml above {}", cwd.display());
                    return ExitCode::FAILURE;
                }
            }
        }
    };
    let baseline = baseline.unwrap_or_else(|| root.join(lint::BASELINE_FILE));

    if list {
        return match lint::collect_findings(&root) {
            Ok(findings) => {
                for f in &findings {
                    println!("{}:{}: {} {}", f.path, f.line, f.rule.id(), f.message);
                }
                println!("{} finding(s)", findings.len());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("drywells-lint: {e}");
                ExitCode::FAILURE
            }
        };
    }

    match lint::run(&root, &baseline, update) {
        Ok(report) => {
            print!("{}", report.render());
            if report.ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("drywells-lint: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("drywells-lint: {err}");
    }
    eprintln!(
        "usage: drywells-lint [--root DIR] [--baseline PATH] [--update-baseline] [--list]"
    );
    ExitCode::FAILURE
}
