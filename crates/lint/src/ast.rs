//! A brace-matched item tree over the token stream.
//!
//! This is not a Rust parser; it is the minimum structure the flow
//! rules need: which token ranges are functions (and what they're
//! named), which `impl` block a method lives in (for resolving
//! `self.field` lock receivers), and which items are test code —
//! where `#[cfg(test)]` on a module exempts everything inside it,
//! inherited through the tree instead of re-derived per line.
//!
//! The parser walks the token stream recognising item keywords after
//! attributes and modifiers, matches the delimiters that close each
//! item, and recurses into `mod`/`impl`/`trait` bodies. Anything it
//! doesn't recognise (expressions, macro invocations, stray tokens)
//! is skipped token-by-token — unknown syntax can never desync the
//! tree, only fall out of it.

use crate::lexer::{matching, Lexed, TokenKind};

/// What kind of item a node is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ItemKind {
    Fn,
    Mod,
    Impl,
    Trait,
    Struct,
    Enum,
    Static,
    Const,
    Other,
}

/// One item in the tree.
#[derive(Debug)]
pub struct Item {
    pub kind: ItemKind,
    /// Function/mod/struct name; for `impl`, the self type's last path
    /// segment (`impl Display for Foo` → `Foo`).
    pub name: String,
    /// Is this item (or any ancestor) under `#[cfg(test)]` or `#[test]`?
    pub cfg_test: bool,
    /// 1-based line range of the whole item, attributes included.
    pub line_range: (usize, usize),
    /// Token indices of the body's `{` and `}` (absent for `fn f();`
    /// in traits, `struct S;`, `use`, etc.).
    pub body: Option<(usize, usize)>,
    /// For items inside an `impl` block: the self type name.
    pub self_ty: Option<String>,
    /// Nested items (a `mod`'s or `impl`'s children).
    pub children: Vec<Item>,
}

/// A function ready for statement walking.
pub struct FnInfo<'t> {
    pub name: &'t str,
    pub self_ty: Option<&'t str>,
    pub cfg_test: bool,
    /// Token indices of the body's `{` and `}`.
    pub body: (usize, usize),
    pub line: usize,
}

/// The item tree of one file.
pub struct ItemTree {
    pub items: Vec<Item>,
}

impl ItemTree {
    /// Every function with a body, including methods inside `impl`
    /// blocks and functions in nested modules. Functions nested
    /// *inside* another function's body are not separate entries —
    /// the statement walk of the outer function covers their tokens,
    /// which over-approximates guard liveness but never hides a lock
    /// acquisition.
    pub fn functions(&self) -> Vec<FnInfo<'_>> {
        let mut out = Vec::new();
        fn visit<'t>(items: &'t [Item], out: &mut Vec<FnInfo<'t>>) {
            for it in items {
                if it.kind == ItemKind::Fn {
                    if let Some(body) = it.body {
                        out.push(FnInfo {
                            name: &it.name,
                            self_ty: it.self_ty.as_deref(),
                            cfg_test: it.cfg_test,
                            body,
                            line: it.line_range.0,
                        });
                    }
                }
                visit(&it.children, out);
            }
        }
        visit(&self.items, &mut out);
        out
    }

    /// The sorted set of 1-based lines covered by test items
    /// (`#[test]` functions and `#[cfg(test)]` subtrees), for the
    /// lexical rules' test exemption.
    pub fn test_lines(&self) -> Vec<(usize, usize)> {
        let mut spans = Vec::new();
        fn visit(items: &[Item], spans: &mut Vec<(usize, usize)>) {
            for it in items {
                if it.cfg_test {
                    spans.push(it.line_range);
                    // Children are covered by the parent's range.
                } else {
                    visit(&it.children, spans);
                }
            }
        }
        visit(&self.items, &mut spans);
        spans.sort_unstable();
        spans
    }

    /// Is `line` inside a test item?
    pub fn is_test_line(&self, line: usize) -> bool {
        self.test_lines()
            .iter()
            .any(|&(a, b)| line >= a && line <= b)
    }
}

/// Does attribute text mark an item as test code? Matches the
/// predecessor's semantics exactly: `#[test]`, `#[cfg(test)]`, and
/// compound forms like `#[cfg(all(test, unix))]`.
fn is_test_attr(attr: &str) -> bool {
    let t = attr.trim();
    if t == "test" || t.contains("cfg(test") {
        return true;
    }
    // `cfg(all(test, unix))` and friends: a word-bounded `test`
    // anywhere inside a cfg predicate.
    if let Some(rest) = t.strip_prefix("cfg(") {
        let bytes = rest.as_bytes();
        let mut from = 0;
        while let Some(off) = rest[from..].find("test") {
            let at = from + off;
            let before_ok = at == 0 || !bytes[at - 1].is_ascii_alphanumeric() && bytes[at - 1] != b'_';
            let end = at + 4;
            let after_ok =
                end >= bytes.len() || !bytes[end].is_ascii_alphanumeric() && bytes[end] != b'_';
            if before_ok && after_ok {
                return true;
            }
            from = at + 1;
        }
    }
    false
}

/// Build the item tree for a lexed file.
pub fn parse(lx: &Lexed<'_>) -> ItemTree {
    let mut p = Parser {
        lx,
        toks: &lx.tokens,
    };
    let end = lx.tokens.len();
    ItemTree {
        items: p.block(0, end, false, None),
    }
}

struct Parser<'a, 'src> {
    lx: &'a Lexed<'src>,
    toks: &'a [crate::lexer::Token],
}

const MODIFIERS: &[&str] = &["pub", "unsafe", "async", "extern", "default", "const"];

impl<'a, 'src> Parser<'a, 'src> {
    fn text(&self, i: usize) -> &'src str {
        self.lx.text(i)
    }

    fn line(&self, i: usize) -> usize {
        self.toks[i].line
    }

    /// Parse the items in token range `[from, to)`.
    fn block(
        &mut self,
        from: usize,
        to: usize,
        inherited_test: bool,
        self_ty: Option<&str>,
    ) -> Vec<Item> {
        let mut items = Vec::new();
        let mut i = from;
        while i < to {
            match self.item(i, to, inherited_test, self_ty) {
                Some((item, next)) => {
                    items.push(item);
                    i = next;
                }
                None => i += 1,
            }
        }
        items
    }

    /// Try to parse one item starting at token `i`; returns the item
    /// and the index just past it.
    fn item(
        &mut self,
        start: usize,
        to: usize,
        inherited_test: bool,
        outer_self_ty: Option<&str>,
    ) -> Option<(Item, usize)> {
        let mut i = start;
        let mut own_test = false;

        // Attributes: `#[…]` marks the next item; `#![…]` is an inner
        // attribute and belongs to the enclosing scope — skip it
        // without attaching.
        while i < to && self.lx.is_punct(i, b'#') {
            let inner = i + 1 < to && self.lx.is_punct(i + 1, b'!');
            let open = if inner { i + 2 } else { i + 1 };
            if open >= to || !self.lx.is_punct(open, b'[') {
                return None;
            }
            let close = matching(self.toks, open)?;
            if close >= to {
                return None;
            }
            if !inner {
                let t = &self.toks[open + 1];
                let u = &self.toks[close];
                let text = &self.lx.src[t.start..u.start];
                if is_test_attr(text) {
                    own_test = true;
                }
            }
            i = close + 1;
        }

        // Modifiers before the item keyword. `const` is ambiguous
        // (`const fn` vs `const NAME: …`): treat it as a modifier only
        // when `fn`/`unsafe`/`extern` follows.
        loop {
            if i >= to || self.toks[i].kind != TokenKind::Ident {
                break;
            }
            let w = self.text(i);
            if !MODIFIERS.contains(&w) {
                break;
            }
            if w == "const" {
                let next = self
                    .toks
                    .get(i + 1)
                    .filter(|t| t.kind == TokenKind::Ident)
                    .map(|t| &self.lx.src[t.start..t.end]);
                if !matches!(next, Some("fn") | Some("unsafe") | Some("extern")) {
                    break; // a const item, handled below
                }
            }
            i += 1;
            // `pub(crate)` / `pub(in …)`.
            if w == "pub" && i < to && self.lx.is_punct(i, b'(') {
                i = matching(self.toks, i)? + 1;
            }
            // `extern "C"`.
            if w == "extern" && i < to && self.toks[i].kind == TokenKind::Str {
                i += 1;
            }
        }

        if i >= to || self.toks[i].kind != TokenKind::Ident {
            return None;
        }
        let kw = self.text(i);
        let cfg_test = inherited_test || own_test;
        let start_line = self.line(start);

        match kw {
            "fn" => {
                let name = self.ident_after(i + 1, to)?;
                let (body, next) = self.body_or_semi(i + 1, to)?;
                let end_line = self.line(next.saturating_sub(1).max(i));
                Some((
                    Item {
                        kind: ItemKind::Fn,
                        name,
                        cfg_test,
                        line_range: (start_line, end_line),
                        body,
                        self_ty: outer_self_ty.map(str::to_string),
                        children: Vec::new(),
                    },
                    next,
                ))
            }
            "mod" => {
                let name = self.ident_after(i + 1, to)?;
                let (body, next) = self.body_or_semi(i + 1, to)?;
                let children = match body {
                    Some((o, c)) => self.block(o + 1, c, cfg_test, None),
                    None => Vec::new(),
                };
                let end_line = self.line(next.saturating_sub(1).max(i));
                Some((
                    Item {
                        kind: ItemKind::Mod,
                        name,
                        cfg_test,
                        line_range: (start_line, end_line),
                        body,
                        self_ty: None,
                        children,
                    },
                    next,
                ))
            }
            "impl" | "trait" => {
                let is_impl = kw == "impl";
                let (body, next) = self.body_or_semi(i + 1, to)?;
                let (o, c) = body?;
                let self_ty = if is_impl {
                    self.impl_self_ty(i + 1, o)
                } else {
                    self.ident_after(i + 1, to)
                };
                let children = self.block(o + 1, c, cfg_test, self_ty.as_deref());
                let end_line = self.line(next.saturating_sub(1).max(i));
                Some((
                    Item {
                        kind: if is_impl { ItemKind::Impl } else { ItemKind::Trait },
                        name: self_ty.clone().unwrap_or_default(),
                        cfg_test,
                        line_range: (start_line, end_line),
                        body,
                        self_ty,
                        children,
                    },
                    next,
                ))
            }
            "struct" | "enum" | "union" => {
                let name = self.ident_after(i + 1, to)?;
                let (body, next) = self.body_or_semi(i + 1, to)?;
                let end_line = self.line(next.saturating_sub(1).max(i));
                Some((
                    Item {
                        kind: if kw == "struct" { ItemKind::Struct } else { ItemKind::Enum },
                        name,
                        cfg_test,
                        line_range: (start_line, end_line),
                        body,
                        self_ty: None,
                        children: Vec::new(),
                    },
                    next,
                ))
            }
            "static" | "const" | "use" | "type" => {
                // Terminated by `;` at depth 0.
                let next = self.skip_to_semi(i + 1, to)?;
                let end_line = self.line(next.saturating_sub(1).max(i));
                let kind = match kw {
                    "static" => ItemKind::Static,
                    "const" => ItemKind::Const,
                    _ => ItemKind::Other,
                };
                // `static mut NAME` / `const NAME`.
                let mut ni = i + 1;
                if ni < to && self.lx.is_ident(ni, "mut") {
                    ni += 1;
                }
                let name = self.ident_after(ni, to).unwrap_or_default();
                Some((
                    Item {
                        kind,
                        name,
                        cfg_test,
                        line_range: (start_line, end_line),
                        body: None,
                        self_ty: None,
                        children: Vec::new(),
                    },
                    next,
                ))
            }
            "macro_rules" => {
                let (body, next) = self.body_or_semi(i + 1, to)?;
                let end_line = self.line(next.saturating_sub(1).max(i));
                Some((
                    Item {
                        kind: ItemKind::Other,
                        name: String::new(),
                        cfg_test,
                        line_range: (start_line, end_line),
                        body,
                        self_ty: None,
                        children: Vec::new(),
                    },
                    next,
                ))
            }
            _ => None,
        }
    }

    /// First identifier at or after `i`.
    fn ident_after(&self, i: usize, to: usize) -> Option<String> {
        (i < to && self.toks[i].kind == TokenKind::Ident).then(|| self.text(i).to_string())
    }

    /// Scan forward from `i` to the item's `{…}` body or terminating
    /// `;`, skipping generics, parameter lists, where clauses, and
    /// return types. Returns (body token pair, index past the item).
    fn body_or_semi(&self, i: usize, to: usize) -> Option<(Option<(usize, usize)>, usize)> {
        let mut j = i;
        let mut angle = 0usize;
        while j < to {
            match self.toks[j].kind {
                TokenKind::Punct(b'<') => {
                    angle += 1;
                    j += 1;
                }
                TokenKind::Punct(b'>') => {
                    angle = angle.saturating_sub(1);
                    j += 1;
                }
                TokenKind::Punct(b'(') | TokenKind::Punct(b'[') => {
                    j = matching(self.toks, j)? + 1;
                }
                TokenKind::Punct(b'{') if angle == 0 => {
                    let close = matching(self.toks, j)?;
                    return Some((Some((j, close)), close + 1));
                }
                TokenKind::Punct(b'{') => {
                    // `{` inside generics can't happen; treat as body.
                    let close = matching(self.toks, j)?;
                    return Some((Some((j, close)), close + 1));
                }
                TokenKind::Punct(b';') if angle == 0 => return Some((None, j + 1)),
                _ => j += 1,
            }
        }
        None
    }

    /// Skip to the `;` ending a `use`/`static`/`const`/`type` item,
    /// stepping over any nested delimiters (array initialisers,
    /// const fn calls in the value).
    fn skip_to_semi(&self, i: usize, to: usize) -> Option<usize> {
        let mut j = i;
        while j < to {
            match self.toks[j].kind {
                TokenKind::Punct(b'(') | TokenKind::Punct(b'[') | TokenKind::Punct(b'{') => {
                    j = matching(self.toks, j)? + 1;
                }
                TokenKind::Punct(b';') => return Some(j + 1),
                _ => j += 1,
            }
        }
        None
    }

    /// The self type of an `impl` header: the last path segment of the
    /// type after `for` (trait impls), else the first path after the
    /// impl generics. `impl<T> Index<T> for Table` → `Table`;
    /// `impl Topology` → `Topology`.
    fn impl_self_ty(&self, from: usize, body_open: usize) -> Option<String> {
        let mut after_for = None;
        let mut j = from;
        let mut angle = 0usize;
        while j < body_open {
            match self.toks[j].kind {
                TokenKind::Punct(b'<') => angle += 1,
                TokenKind::Punct(b'>') => angle = angle.saturating_sub(1),
                TokenKind::Ident if angle == 0 => {
                    let w = self.text(j);
                    if w == "for" {
                        after_for = Some(j + 1);
                    } else if w == "where" {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let seg_start = after_for.unwrap_or(from);
        // Last plain identifier of the path before generics/where/body.
        let mut name = None;
        let mut angle = 0usize;
        let mut j = seg_start;
        while j < body_open {
            match self.toks[j].kind {
                TokenKind::Punct(b'<') => angle += 1,
                TokenKind::Punct(b'>') => angle = angle.saturating_sub(1),
                TokenKind::Ident if angle == 0 => {
                    let w = self.text(j);
                    if w == "where" || w == "for" {
                        break;
                    }
                    name = Some(w.to_string());
                }
                _ => {}
            }
            j += 1;
        }
        name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn tree(src: &str) -> ItemTree {
        parse(&lex(src))
    }

    #[test]
    fn plain_fns_and_bodies() {
        let t = tree("fn a() { x(); }\npub async fn b(n: u8) -> u8 { n }\nfn sig_only();\n");
        let fns = t.functions();
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].name, "a");
        assert_eq!(fns[1].name, "b");
    }

    #[test]
    fn impl_methods_carry_self_ty() {
        let src = "struct Table;\nimpl Table {\n fn get(&self) {}\n}\nimpl<T> From<T> for Table {\n fn from(_: T) -> Self { Table }\n}\n";
        let t = tree(src);
        let fns = t.functions();
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].self_ty, Some("Table"));
        assert_eq!(fns[1].self_ty, Some("Table"));
    }

    #[test]
    fn cfg_test_is_inherited_through_modules() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    use super::*;\n    #[test]\n    fn t1() { live(); }\n    fn helper() {}\n}\n";
        let t = tree(src);
        let fns = t.functions();
        assert_eq!(fns.len(), 3);
        assert!(!fns[0].cfg_test);
        assert!(fns.iter().filter(|f| f.cfg_test).count() == 2);
        assert!(t.is_test_line(6));
        assert!(!t.is_test_line(1));
    }

    #[test]
    fn test_attr_without_cfg_module() {
        let src = "#[test]\nfn standalone() { assert!(true); }\nfn live() {}\n";
        let t = tree(src);
        assert!(t.is_test_line(2));
        assert!(!t.is_test_line(3));
    }

    #[test]
    fn cfg_all_test_counts() {
        let src = "#[cfg(all(test, unix))]\nmod m { fn f() {} }\n";
        let t = tree(src);
        assert!(t.is_test_line(2));
    }

    #[test]
    fn where_clauses_and_generics_do_not_desync() {
        let src = "fn g<T: Iterator<Item = u8>>(x: T) -> Vec<u8>\nwhere T: Clone {\n    x.collect()\n}\nfn after() {}\n";
        let t = tree(src);
        let fns = t.functions();
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[1].name, "after");
    }

    #[test]
    fn statics_and_consts_parse() {
        let src = "static QUEUE: Mutex<Vec<u8>> = Mutex::new(Vec::new());\nconst N: usize = 4;\nfn f() {}\n";
        let t = tree(src);
        assert_eq!(t.items[0].kind, ItemKind::Static);
        assert_eq!(t.items[0].name, "QUEUE");
        assert_eq!(t.items[1].kind, ItemKind::Const);
        assert_eq!(t.items[1].name, "N");
    }

    #[test]
    fn inner_attrs_do_not_eat_the_next_item() {
        let src = "#![allow(dead_code)]\nfn f() {}\n";
        let t = tree(src);
        assert_eq!(t.functions().len(), 1);
    }

    #[test]
    fn macro_invocations_are_skipped() {
        let src = "macro_rules! m { () => {} }\nthread_local! { static S: u8 = 0; }\nfn real() {}\n";
        let t = tree(src);
        assert!(t.functions().iter().any(|f| f.name == "real"));
    }
}
