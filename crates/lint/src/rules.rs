//! The six invariant rules and the per-file analyzer that applies
//! them.
//!
//! Each rule maps to a guarantee the reproduction's outputs depend on
//! (see DESIGN.md §4e): L1 codec safety, L2 panic-freedom of library
//! code, L3 wall-clock determinism, L4 iteration-order determinism,
//! L5 pooled concurrency, L6 shim hygiene. Rules are lexical — they
//! scan the masked views from [`crate::lexer`] — and every rule can be
//! silenced per line with `// lint:allow(Ln): reason`.

use crate::context::{test_spans, TestSpans};
use crate::lexer::{lex, Lexed};

/// A rule identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub enum Rule {
    /// Bare narrowing casts (`as u8`/`as u16`/`as u32`).
    L1,
    /// `unwrap`/`expect`/`panic!`/`unreachable!` in non-test library code.
    L2,
    /// Wall-clock reads outside the observability and serving crates.
    L3,
    /// `HashMap`/`HashSet` in crates that produce figure/CSV/MRT output.
    L4,
    /// `thread::spawn` outside the sanctioned pool implementations.
    L5,
    /// Direct imports from `shims/` paths.
    L6,
}

/// Every rule, in report order.
pub const ALL_RULES: [Rule; 6] = [Rule::L1, Rule::L2, Rule::L3, Rule::L4, Rule::L5, Rule::L6];

impl Rule {
    /// The short id used in reports, baselines, and allow directives.
    pub fn id(self) -> &'static str {
        match self {
            Rule::L1 => "L1",
            Rule::L2 => "L2",
            Rule::L3 => "L3",
            Rule::L4 => "L4",
            Rule::L5 => "L5",
            Rule::L6 => "L6",
        }
    }

    /// A one-word name for summaries.
    pub fn name(self) -> &'static str {
        match self {
            Rule::L1 => "narrowing-cast",
            Rule::L2 => "panic-path",
            Rule::L3 => "wall-clock",
            Rule::L4 => "hash-iteration",
            Rule::L5 => "stray-spawn",
            Rule::L6 => "shim-import",
        }
    }

    /// Parse an id as written in a baseline file or allow directive.
    pub fn parse(s: &str) -> Option<Rule> {
        ALL_RULES.iter().copied().find(|r| r.id() == s)
    }
}

/// One rule violation at a specific source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Which rule fired.
    pub rule: Rule,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed (also the fingerprint input).
    pub excerpt: String,
    /// What is wrong and how to fix or allowlist it.
    pub message: String,
}

/// Crates whose output must be byte-deterministic (figures, CSVs, MRT
/// archives, delegation tables) and therefore may not iterate hash
/// collections: [`Rule::L4`]'s scope.
const DETERMINISTIC_CRATES: [&str; 8] = [
    "bgpsim",
    "core",
    "delegation",
    "market",
    "nettypes",
    "registry",
    "rpki",
    "rdap",
];

/// Crates allowed to read the wall clock ([`Rule::L3`]): metrics and
/// socket timeouts are *about* real time.
const CLOCK_CRATES: [&str; 2] = ["obs", "serve"];

/// Files allowed to spawn raw threads ([`Rule::L5`]): the worker-pool
/// implementations everything else is supposed to go through.
const SPAWN_FILES: [&str; 2] = ["crates/bgpsim/src/par.rs", "crates/serve/src/server.rs"];

/// Is this path dev/test code (workspace-level tests and examples,
/// per-crate `tests/` and `benches/` directories)?
fn is_test_path(path: &str) -> bool {
    path.starts_with("tests/")
        || path.starts_with("examples/")
        || path.contains("/tests/")
        || path.contains("/benches/")
        || path.contains("/examples/")
}

/// The crate a `crates/<name>/…` path belongs to.
fn crate_of(path: &str) -> Option<&str> {
    path.strip_prefix("crates/")?.split('/').next()
}

/// Scan one Rust source file for findings. `path` must be
/// workspace-relative with `/` separators.
pub fn scan_source(path: &str, source: &str) -> Vec<Finding> {
    let lexed = lex(source);
    let spans = test_spans(&lexed.code);
    let lines: Vec<&str> = source.lines().collect();
    let test_file = is_test_path(path);
    let this_crate = crate_of(path);

    let mut findings = Vec::new();
    let mut push = |rule: Rule, line: usize, message: String| {
        if lexed
            .allows
            .get(&line)
            .is_some_and(|rules| rules.contains(rule.id()))
        {
            return;
        }
        let excerpt = lines
            .get(line.saturating_sub(1))
            .map(|l| l.trim().to_string())
            .unwrap_or_default();
        findings.push(Finding {
            rule,
            path: path.to_string(),
            line,
            excerpt,
            message,
        });
    };

    // L1/L2/L4/L5 exempt test code: a cast or unwrap in a test cannot
    // corrupt an artifact or take down a serving worker.
    let in_lib = |line: usize, spans: &TestSpans| !test_file && !spans.contains(line);

    // L1 — narrowing casts.
    for (line, width) in narrowing_casts(&lexed) {
        if in_lib(line, &spans) {
            push(
                Rule::L1,
                line,
                format!(
                    "bare narrowing cast `as {width}` can silently truncate; use \
                     `{width}::try_from(…)` or justify with `// lint:allow(L1): why`"
                ),
            );
        }
    }

    // L2 — panic paths in library code.
    for (line, what) in panic_sites(&lexed) {
        if in_lib(line, &spans) {
            push(
                Rule::L2,
                line,
                format!(
                    "`{what}` in non-test library code can panic; return an error \
                     (or `// lint:allow(L2): why` if the panic is load-bearing)"
                ),
            );
        }
    }

    // L3 — wall-clock reads. Applies to tests too (a nondeterministic
    // test is still a flaky test); only the clock crates are exempt.
    if !this_crate.is_some_and(|c| CLOCK_CRATES.contains(&c)) {
        for (line, what) in clock_sites(&lexed) {
            push(
                Rule::L3,
                line,
                format!(
                    "`{what}` outside crates/obs and crates/serve risks wall-clock \
                     nondeterminism in artifacts; plumb time in explicitly or \
                     `// lint:allow(L3): why`"
                ),
            );
        }
    }

    // L4 — hash collections in deterministic-output crates.
    if this_crate.is_some_and(|c| DETERMINISTIC_CRATES.contains(&c)) {
        for (line, what) in hash_sites(&lexed) {
            if in_lib(line, &spans) {
                push(
                    Rule::L4,
                    line,
                    format!(
                        "`{what}` in a deterministic-output crate: iteration order is \
                         random per process; use `BTree{}` or `// lint:allow(L4): why`",
                        &what[4..]
                    ),
                );
            }
        }
    }

    // L5 — raw thread spawns outside the pool implementations.
    if !SPAWN_FILES.contains(&path) {
        for line in spawn_sites(&lexed) {
            if in_lib(line, &spans) {
                push(
                    Rule::L5,
                    line,
                    "`thread::spawn` outside bgpsim::par and serve::server bypasses the \
                     bounded pools; use them (or `// lint:allow(L5): why`)"
                        .to_string(),
                );
            }
        }
    }

    // L6 — direct shim imports. Scans the strings-kept view because
    // `#[path = "…/shims/…"]` and `include!("…/shims/…")` put the
    // offending path inside a string literal. Applies everywhere.
    for line in shim_sites(&lexed) {
        push(
            Rule::L6,
            line,
            "direct import from the vendored shim tree bypasses the workspace \
             dependency table; depend on the shim crate via `{ workspace = true }`"
                .to_string(),
        );
    }

    findings.sort_by_key(|f| (f.line, f.rule));
    findings
}

/// Scan a `Cargo.toml` under `crates/` for direct `shims/` path
/// dependencies ([`Rule::L6`] at the manifest layer).
pub fn scan_manifest(path: &str, source: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("");
        // lint:allow(L6): the rule's own needle, not an import
        if line.contains("shims/") {
            findings.push(Finding {
                rule: Rule::L6,
                path: path.to_string(),
                line: idx + 1,
                excerpt: raw.trim().to_string(),
                message: "manifest depends on a vendored shim path directly; route it \
                          through [workspace.dependencies] so the shim stays swappable"
                    .to_string(),
            });
        }
    }
    findings
}

/// Byte offset → 1-based line number, for match positions.
fn line_at(code: &str, at: usize) -> usize {
    1 + code.as_bytes()[..at].iter().filter(|&&b| b == b'\n').count()
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Occurrences of `needle` in `hay` whose neighbours satisfy the
/// boundary predicates; yields byte offsets.
fn bounded_matches<'a>(
    hay: &'a str,
    needle: &'a str,
    check_before: bool,
    check_after: bool,
) -> impl Iterator<Item = usize> + 'a {
    let bytes = hay.as_bytes();
    let mut from = 0usize;
    std::iter::from_fn(move || {
        while let Some(off) = hay[from..].find(needle) {
            let at = from + off;
            from = at + 1;
            let ok_before = !check_before || at == 0 || !is_ident(bytes[at - 1]);
            let end = at + needle.len();
            let ok_after = !check_after || end >= bytes.len() || !is_ident(bytes[end]);
            if ok_before && ok_after {
                return Some(at);
            }
        }
        None
    })
}

/// L1 match sites: (line, target width).
fn narrowing_casts(lexed: &Lexed) -> Vec<(usize, &'static str)> {
    let code = &lexed.code;
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    for at in bounded_matches(code, "as", true, true) {
        // Skip whitespace after `as` (casts may wrap lines).
        let mut j = at + 2;
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        for width in ["u8", "u16", "u32"] {
            let end = j + width.len();
            if code[j..].starts_with(width) && (end >= bytes.len() || !is_ident(bytes[end])) {
                out.push((line_at(code, at), width));
                break;
            }
        }
    }
    out
}

/// L2 match sites: (line, which construct).
fn panic_sites(lexed: &Lexed) -> Vec<(usize, &'static str)> {
    let code = &lexed.code;
    let mut out = Vec::new();
    for at in bounded_matches(code, ".unwrap()", false, false) {
        out.push((line_at(code, at), ".unwrap()"));
    }
    for at in bounded_matches(code, ".expect(", false, false) {
        out.push((line_at(code, at), ".expect(…)"));
    }
    for at in bounded_matches(code, "panic!", true, false) {
        out.push((line_at(code, at), "panic!"));
    }
    for at in bounded_matches(code, "unreachable!", true, false) {
        out.push((line_at(code, at), "unreachable!"));
    }
    out
}

/// L3 match sites: (line, which clock).
fn clock_sites(lexed: &Lexed) -> Vec<(usize, &'static str)> {
    let code = &lexed.code;
    let mut out = Vec::new();
    for at in bounded_matches(code, "SystemTime::now", true, false) {
        out.push((line_at(code, at), "SystemTime::now"));
    }
    for at in bounded_matches(code, "Instant::now", true, false) {
        out.push((line_at(code, at), "Instant::now"));
    }
    out
}

/// L4 match sites: (line, which collection).
fn hash_sites(lexed: &Lexed) -> Vec<(usize, &'static str)> {
    let code = &lexed.code;
    let mut out = Vec::new();
    for at in bounded_matches(code, "HashMap", true, true) {
        out.push((line_at(code, at), "HashMap"));
    }
    for at in bounded_matches(code, "HashSet", true, true) {
        out.push((line_at(code, at), "HashSet"));
    }
    out
}

/// L5 match sites.
fn spawn_sites(lexed: &Lexed) -> Vec<usize> {
    bounded_matches(&lexed.code, "thread::spawn", false, true)
        .map(|at| line_at(&lexed.code, at))
        .collect()
}

/// L6 match sites (strings-kept view; deduped per line).
fn shim_sites(lexed: &Lexed) -> Vec<usize> {
    // lint:allow(L6): the rule's own needle, not an import
    let mut lines: Vec<usize> = bounded_matches(&lexed.code_with_strings, "shims/", true, false)
        .map(|at| line_at(&lexed.code_with_strings, at))
        .collect();
    lines.dedup();
    lines
}
