//! The invariant rules and the workspace analyzer that applies them.
//!
//! Each rule maps to a guarantee the reproduction's outputs depend on
//! (see DESIGN.md §4e). The lexical rules (L1–L6) scan the masked
//! views from [`crate::lexer`]; the flow rules (L7–L10) walk the
//! token stream through the item tree from [`crate::ast`] — L7 builds
//! a workspace-wide lock graph ([`crate::graph`]) and is therefore a
//! *workspace* rule, which is why the analyzer entry point is
//! [`scan_workspace`] over all files at once. Every rule can be
//! silenced per line with `// lint:allow(Ln): reason`.

use crate::ast::{parse, ItemTree};
use crate::graph::{self, LockGraph};
use crate::lexer::{lex, Lexed};
#[cfg(test)]
use crate::lexer::TokenKind;

/// A rule identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub enum Rule {
    /// Bare narrowing casts (`as u8`/`as u16`/`as u32`).
    L1,
    /// `unwrap`/`expect`/`panic!`/`unreachable!` in non-test library code.
    L2,
    /// Wall-clock reads outside the observability and serving crates.
    L3,
    /// `thread::spawn` outside the sanctioned pool implementations.
    L5,
    /// Direct imports from `shims/` paths.
    L6,
    /// Lock-order cycles in the acquired-while-held graph.
    L7,
    /// Atomic-ordering misuse: Relaxed publication, needless SeqCst.
    L8,
    /// Hash-collection iteration order reaching an output sink.
    L9,
    /// Discarded `Result`s (`let _ = fallible()` / `.ok();`).
    L10,
}

/// Every rule, in report order. L4 (per-line hash-collection ban) was
/// retired in favour of the flow-aware L9; its id is never reused.
pub const ALL_RULES: [Rule; 9] = [
    Rule::L1,
    Rule::L2,
    Rule::L3,
    Rule::L5,
    Rule::L6,
    Rule::L7,
    Rule::L8,
    Rule::L9,
    Rule::L10,
];

impl Rule {
    /// The short id used in reports, baselines, and allow directives.
    pub fn id(self) -> &'static str {
        match self {
            Rule::L1 => "L1",
            Rule::L2 => "L2",
            Rule::L3 => "L3",
            Rule::L5 => "L5",
            Rule::L6 => "L6",
            Rule::L7 => "L7",
            Rule::L8 => "L8",
            Rule::L9 => "L9",
            Rule::L10 => "L10",
        }
    }

    /// A one-word name for summaries.
    pub fn name(self) -> &'static str {
        match self {
            Rule::L1 => "narrowing-cast",
            Rule::L2 => "panic-path",
            Rule::L3 => "wall-clock",
            Rule::L5 => "stray-spawn",
            Rule::L6 => "shim-import",
            Rule::L7 => "lock-order",
            Rule::L8 => "atomic-ordering",
            Rule::L9 => "determinism-flow",
            Rule::L10 => "error-swallow",
        }
    }

    /// Parse an id as written in a baseline file or allow directive.
    pub fn parse(s: &str) -> Option<Rule> {
        ALL_RULES.iter().copied().find(|r| r.id() == s)
    }

    /// The invariant the rule protects, for `repro lint --explain Ln`.
    pub fn explain(self) -> &'static str {
        match self {
            Rule::L1 => {
                "L1 narrowing-cast — no silent integer truncation.\n\
                 A bare `as u8`/`as u16`/`as u32` discards high bits without a\n\
                 trace; in the MRT and delegation codecs that corrupts archives\n\
                 byte-identically enough to pass casual diffing. Use\n\
                 `uN::try_from(x)` and handle the error, or justify the cast\n\
                 with `// lint:allow(L1): why` when the range is proven."
            }
            Rule::L2 => {
                "L2 panic-path — library code must not panic.\n\
                 `unwrap`/`expect`/`panic!`/`unreachable!` in non-test library\n\
                 code turns a recoverable condition into a worker death; the\n\
                 serving layer and the figure pipeline both run under pools\n\
                 that must outlive any one request or chunk. Return an error,\n\
                 or `// lint:allow(L2): why` when the panic is load-bearing."
            }
            Rule::L3 => {
                "L3 wall-clock — deterministic code may not read the clock.\n\
                 `SystemTime::now`/`Instant::now` outside crates/obs and\n\
                 crates/serve leaks nondeterminism into artifacts that must\n\
                 reproduce byte-identically run to run. Plumb time in as an\n\
                 argument, or `// lint:allow(L3): why` for true diagnostics."
            }
            Rule::L5 => {
                "L5 stray-spawn — all parallelism goes through the pools.\n\
                 `thread::spawn` outside bgpsim::par and serve::server\n\
                 bypasses the bounded worker pools, breaking both the\n\
                 determinism argument (ordered chunk merge) and load shedding."
            }
            Rule::L6 => {
                "L6 shim-import — the vendored shim tree is not a crate path.\n\
                 Importing from the shim directory directly (via `#[path]`,\n\
                 `include!`, or a manifest path dependency) bypasses\n\
                 [workspace.dependencies], so the shim can no longer be\n\
                 swapped for the real crate."
            }
            Rule::L7 => {
                "L7 lock-order — no cycles in the acquired-while-held graph.\n\
                 Every Mutex/RwLock field, static, and local is a node; an\n\
                 edge A→B is recorded when B is acquired while a guard for A\n\
                 is live (scope- and drop()-aware, across serve, obs, and\n\
                 bgpsim::par). A cycle means two threads can take the same\n\
                 locks in opposite orders and deadlock; the finding prints\n\
                 the witness path with every hold and acquisition site.\n\
                 Fix by ordering acquisitions consistently or dropping the\n\
                 first guard before taking the second."
            }
            Rule::L8 => {
                "L8 atomic-ordering — orderings must match the data flow.\n\
                 A `store(_, Ordering::Relaxed)` that publishes data written\n\
                 just before it lets another thread observe the flag without\n\
                 the data (needs Release, paired with Acquire loads). And\n\
                 SeqCst in a function that touches only one atomic buys a\n\
                 global order nobody consumes — use the cheapest ordering\n\
                 that is correct, or `// lint:allow(L8): why`."
            }
            Rule::L9 => {
                "L9 determinism-flow — hash iteration order must not reach\n\
                 output. HashMap/HashSet in deterministic crates is fine as\n\
                 a keyed store; it becomes a finding only when iteration\n\
                 order (or float summation order) can reach an output sink:\n\
                 format!/write!-family macros, push/extend into emitted\n\
                 buffers, encoders, or `.collect::<Vec<_>>()` that is never\n\
                 sorted. Replaces the retired per-line L4. Fix with BTreeMap/\n\
                 BTreeSet or by sorting before emission."
            }
            Rule::L10 => {
                "L10 error-swallow — Results must be checked in library code.\n\
                 `let _ = fallible()` and statement-level `.ok();` silently\n\
                 drop errors that the caller then can't distinguish from\n\
                 success (half-written files, lost socket errors). Propagate\n\
                 with `?`, log explicitly, or `// lint:allow(L10): why`."
            }
        }
    }
}

/// One rule violation at a specific source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Which rule fired.
    pub rule: Rule,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed (also the fingerprint input).
    pub excerpt: String,
    /// What is wrong and how to fix or allowlist it.
    pub message: String,
}

/// Crates whose output must be byte-deterministic (figures, CSVs, MRT
/// archives, delegation tables) and therefore may not let hash
/// iteration reach output: [`Rule::L9`]'s scope.
const DETERMINISTIC_CRATES: [&str; 8] = [
    "bgpsim",
    "core",
    "delegation",
    "market",
    "nettypes",
    "registry",
    "rpki",
    "rdap",
];

/// Crates allowed to read the wall clock ([`Rule::L3`]): metrics and
/// socket timeouts are *about* real time.
const CLOCK_CRATES: [&str; 2] = ["obs", "serve"];

/// Files allowed to spawn raw threads ([`Rule::L5`]): the worker-pool
/// implementations everything else is supposed to go through.
const SPAWN_FILES: [&str; 2] = ["crates/bgpsim/src/par.rs", "crates/serve/src/server.rs"];

/// Is `path` in [`Rule::L7`]'s scope — the concurrent subsystems whose
/// locks interleave at runtime?
fn lock_scope(path: &str) -> bool {
    path.starts_with("crates/serve/")
        || path.starts_with("crates/obs/")
        || path == "crates/bgpsim/src/par.rs"
}

/// Is this path dev/test code (workspace-level tests and examples,
/// per-crate `tests/` and `benches/` directories)?
fn is_test_path(path: &str) -> bool {
    path.starts_with("tests/")
        || path.starts_with("examples/")
        || path.contains("/tests/")
        || path.contains("/benches/")
        || path.contains("/examples/")
}

/// The crate a `crates/<name>/…` path belongs to.
fn crate_of(path: &str) -> Option<&str> {
    path.strip_prefix("crates/")?.split('/').next()
}

/// Scan one Rust source file in isolation. Workspace-level rules (L7)
/// see only this file — fine for single-file lock cycles, which is
/// what the fixtures exercise; the real gate goes through
/// [`scan_workspace`].
pub fn scan_source(path: &str, source: &str) -> Vec<Finding> {
    scan_workspace(&[(path.to_string(), source.to_string())])
}

/// Scan a set of workspace files — `(relative path, contents)` pairs,
/// `.rs` sources and `Cargo.toml` manifests. Findings come back
/// sorted by (path, line, rule).
pub fn scan_workspace(files: &[(String, String)]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut sources: Vec<(&str, Lexed<'_>, ItemTree)> = Vec::new();
    for (path, text) in files {
        if path.ends_with(".rs") {
            let lx = lex(text);
            let tree = parse(&lx);
            sources.push((path, lx, tree));
        } else {
            findings.extend(scan_manifest(path, text));
        }
    }

    for (path, lx, tree) in &sources {
        findings.extend(scan_file(path, lx, tree));
    }

    // L7 — the lock graph spans files; cycles anchor at their first
    // edge's acquisition site.
    let scoped: Vec<(&str, &Lexed<'_>, &ItemTree)> = sources
        .iter()
        .filter(|(p, _, _)| lock_scope(p))
        .map(|(p, lx, tree)| (*p, lx, tree))
        .collect();
    if !scoped.is_empty() {
        let g = graph::build(&scoped);
        for cycle in g.cycles() {
            let anchor = cycle[0];
            let Some((_, lx, _)) = sources.iter().find(|(p, _, _)| *p == anchor.path) else {
                continue;
            };
            if lx.allowed(anchor.line, "L7") {
                continue;
            }
            findings.push(Finding {
                rule: Rule::L7,
                path: anchor.path.clone(),
                line: anchor.line,
                excerpt: excerpt_of(lx.src, anchor.line),
                message: LockGraph::witness(&cycle),
            });
        }
    }

    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    findings
}

/// The trimmed source line `line` (1-based) of `src`.
fn excerpt_of(src: &str, line: usize) -> String {
    src.lines()
        .nth(line.saturating_sub(1))
        .map(|l| l.trim().to_string())
        .unwrap_or_default()
}

/// All per-file rules over one lexed + parsed source file.
fn scan_file(path: &str, lexed: &Lexed<'_>, tree: &ItemTree) -> Vec<Finding> {
    let test_file = is_test_path(path);
    let this_crate = crate_of(path);
    let test_spans = tree.test_lines();
    let in_test = |line: usize| {
        test_spans
            .iter()
            .any(|&(a, b)| line >= a && line <= b)
    };

    let mut findings = Vec::new();
    let mut push = |rule: Rule, line: usize, message: String| {
        if lexed.allowed(line, rule.id()) {
            return;
        }
        findings.push(Finding {
            rule,
            path: path.to_string(),
            line,
            excerpt: excerpt_of(lexed.src, line),
            message,
        });
    };

    // L1/L5/L8/L9/L10 (and L2) exempt test code: a cast or unwrap in
    // a test cannot corrupt an artifact or take down a serving worker.
    let in_lib = |line: usize| !test_file && !in_test(line);

    // L1 — narrowing casts.
    for (line, width) in narrowing_casts(lexed) {
        if in_lib(line) {
            push(
                Rule::L1,
                line,
                format!(
                    "bare narrowing cast `as {width}` can silently truncate; use \
                     `{width}::try_from(…)` or justify with `// lint:allow(L1): why`"
                ),
            );
        }
    }

    // L2 — panic paths in library code.
    for (line, what) in panic_sites(lexed) {
        if in_lib(line) {
            push(
                Rule::L2,
                line,
                format!(
                    "`{what}` in non-test library code can panic; return an error \
                     (or `// lint:allow(L2): why` if the panic is load-bearing)"
                ),
            );
        }
    }

    // L3 — wall-clock reads. Applies to tests too (a nondeterministic
    // test is still a flaky test); only the clock crates are exempt.
    if !this_crate.is_some_and(|c| CLOCK_CRATES.contains(&c)) {
        for (line, what) in clock_sites(lexed) {
            push(
                Rule::L3,
                line,
                format!(
                    "`{what}` outside crates/obs and crates/serve risks wall-clock \
                     nondeterminism in artifacts; plumb time in explicitly or \
                     `// lint:allow(L3): why`"
                ),
            );
        }
    }

    // L5 — raw thread spawns outside the pool implementations.
    if !SPAWN_FILES.contains(&path) {
        for line in spawn_sites(lexed) {
            if in_lib(line) {
                push(
                    Rule::L5,
                    line,
                    "`thread::spawn` outside bgpsim::par and serve::server bypasses the \
                     bounded pools; use them (or `// lint:allow(L5): why`)"
                        .to_string(),
                );
            }
        }
    }

    // L6 — direct shim imports. Scans the strings-kept view because
    // `#[path = "…/shims/…"]` and `include!("…/shims/…")` put the
    // offending path inside a string literal. Applies everywhere.
    for line in shim_sites(lexed) {
        push(
            Rule::L6,
            line,
            "direct import from the vendored shim tree bypasses the workspace \
             dependency table; depend on the shim crate via `{ workspace = true }`"
                .to_string(),
        );
    }

    // L8 — atomic-ordering audit, per function.
    for (line, message) in crate::flow::atomic_findings(lexed, tree) {
        if in_lib(line) {
            push(Rule::L8, line, message);
        }
    }

    // L9 — determinism-flow, only in deterministic-output crates.
    if this_crate.is_some_and(|c| DETERMINISTIC_CRATES.contains(&c)) {
        for (line, what) in crate::flow::hash_flow_findings(lexed, tree) {
            if in_lib(line) {
                push(
                    Rule::L9,
                    line,
                    format!(
                        "`{what}` iteration order can reach an output sink in a \
                         deterministic-output crate; use `BTree{}` or sort before \
                         emitting (or `// lint:allow(L9): why`)",
                        &what[4..]
                    ),
                );
            }
        }
    }

    // L10 — swallowed Results in library code.
    for (line, what) in crate::flow::swallow_sites(lexed, tree) {
        if in_lib(line) {
            push(
                Rule::L10,
                line,
                format!(
                    "{what} discards a Result silently; propagate with `?`, handle \
                     the error, or `// lint:allow(L10): why`"
                ),
            );
        }
    }

    findings.sort_by_key(|f| (f.line, f.rule));
    findings
}

/// Scan a `Cargo.toml` under `crates/` for direct `shims/` path
/// dependencies ([`Rule::L6`] at the manifest layer).
pub fn scan_manifest(path: &str, source: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("");
        // lint:allow(L6): the rule's own needle, not an import
        if line.contains("shims/") {
            findings.push(Finding {
                rule: Rule::L6,
                path: path.to_string(),
                line: idx + 1,
                excerpt: raw.trim().to_string(),
                message: "manifest depends on a vendored shim path directly; route it \
                          through [workspace.dependencies] so the shim stays swappable"
                    .to_string(),
            });
        }
    }
    findings
}

/// Byte offset → 1-based line number, for match positions.
fn line_at(code: &str, at: usize) -> usize {
    1 + code.as_bytes()[..at].iter().filter(|&&b| b == b'\n').count()
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Occurrences of `needle` in `hay` whose neighbours satisfy the
/// boundary predicates; yields byte offsets.
fn bounded_matches<'a>(
    hay: &'a str,
    needle: &'a str,
    check_before: bool,
    check_after: bool,
) -> impl Iterator<Item = usize> + 'a {
    let bytes = hay.as_bytes();
    let mut from = 0usize;
    std::iter::from_fn(move || {
        while let Some(off) = hay[from..].find(needle) {
            let at = from + off;
            from = at + 1;
            let ok_before = !check_before || at == 0 || !is_ident(bytes[at - 1]);
            let end = at + needle.len();
            let ok_after = !check_after || end >= bytes.len() || !is_ident(bytes[end]);
            if ok_before && ok_after {
                return Some(at);
            }
        }
        None
    })
}

/// L1 match sites: (line, target width).
fn narrowing_casts(lexed: &Lexed) -> Vec<(usize, &'static str)> {
    let code = &lexed.code;
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    for at in bounded_matches(code, "as", true, true) {
        // Skip whitespace after `as` (casts may wrap lines).
        let mut j = at + 2;
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        for width in ["u8", "u16", "u32"] {
            let end = j + width.len();
            if code[j..].starts_with(width) && (end >= bytes.len() || !is_ident(bytes[end])) {
                out.push((line_at(code, at), width));
                break;
            }
        }
    }
    out
}

/// L2 match sites: (line, which construct).
fn panic_sites(lexed: &Lexed) -> Vec<(usize, &'static str)> {
    let code = &lexed.code;
    let mut out = Vec::new();
    for at in bounded_matches(code, ".unwrap()", false, false) {
        out.push((line_at(code, at), ".unwrap()"));
    }
    for at in bounded_matches(code, ".expect(", false, false) {
        out.push((line_at(code, at), ".expect(…)"));
    }
    for at in bounded_matches(code, "panic!", true, false) {
        out.push((line_at(code, at), "panic!"));
    }
    for at in bounded_matches(code, "unreachable!", true, false) {
        out.push((line_at(code, at), "unreachable!"));
    }
    out
}

/// L3 match sites: (line, which clock).
fn clock_sites(lexed: &Lexed) -> Vec<(usize, &'static str)> {
    let code = &lexed.code;
    let mut out = Vec::new();
    for at in bounded_matches(code, "SystemTime::now", true, false) {
        out.push((line_at(code, at), "SystemTime::now"));
    }
    for at in bounded_matches(code, "Instant::now", true, false) {
        out.push((line_at(code, at), "Instant::now"));
    }
    out
}

/// L5 match sites.
fn spawn_sites(lexed: &Lexed) -> Vec<usize> {
    bounded_matches(&lexed.code, "thread::spawn", false, true)
        .map(|at| line_at(&lexed.code, at))
        .collect()
}

/// L6 match sites (strings-kept view; deduped per line).
fn shim_sites(lexed: &Lexed) -> Vec<usize> {
    // lint:allow(L6): the rule's own needle, not an import
    let mut lines: Vec<usize> = bounded_matches(&lexed.code_with_strings, "shims/", true, false)
        .map(|at| line_at(&lexed.code_with_strings, at))
        .collect();
    lines.dedup();
    lines
}

// Re-exported for the L9 site anchoring parity check in tests.
#[cfg(test)]
pub(crate) fn hash_mention_lines(lexed: &Lexed) -> Vec<usize> {
    lexed
        .tokens
        .iter()
        .enumerate()
        .filter(|(i, t)| {
            t.kind == TokenKind::Ident && matches!(lexed.text(*i), "HashMap" | "HashSet")
        })
        .map(|(_, t)| t.line)
        .collect()
}

#[cfg(test)]
mod parity {
    use super::*;

    #[test]
    fn mention_lines_match_the_masked_view() {
        let src = "use std::collections::HashMap;\n// HashMap in prose\nlet s = \"HashSet\";\nfn f(m: &HashMap<u8, u8>) {}\n";
        let lx = lex(src);
        assert_eq!(hash_mention_lines(&lx), vec![1, 4]);
        let masked: Vec<usize> = bounded_matches(&lx.code, "HashMap", true, true)
            .map(|at| line_at(&lx.code, at))
            .collect();
        assert_eq!(masked, vec![1, 4]);
    }
}
