//! A small comment/string-aware scanner for Rust source.
//!
//! The linter's rules are lexical (substring patterns over source
//! text), so the one thing that must be exactly right is knowing what
//! is *code* and what is not: `unwrap()` inside a doc comment or
//! `"as u16"` inside a string literal is not a finding. This module
//! produces two same-length views of a file:
//!
//! * [`Lexed::code`] — comments **and** string/char literal contents
//!   blanked to spaces (newlines preserved, so byte offsets map to the
//!   original line numbers). Most rules scan this view.
//! * [`Lexed::code_with_strings`] — only comments blanked. The shim
//!   hygiene rule scans this view, because a forbidden
//!   `#[path = "../../shims/…"]` lives inside a string literal.
//!
//! While scanning comments the lexer also collects
//! `lint:allow(RULE[, RULE…]): reason` directives. A trailing comment
//! allowlists its own line; a comment that is alone on its line
//! allowlists the next line.
//!
//! Handled syntax: line and (nested) block comments, plain strings
//! with escapes, raw strings `r"…"` / `r#"…"#` (any number of `#`s),
//! byte strings `b"…"` / `br#"…"#`, char and byte-char literals, and
//! the char-literal vs. lifetime ambiguity (`'a'` vs. `<'a>`).

use std::collections::{BTreeMap, BTreeSet};

/// The two masked views of one source file plus its allow directives.
pub struct Lexed {
    /// Comments and string/char contents blanked.
    pub code: String,
    /// Only comments blanked (string literals preserved).
    pub code_with_strings: String,
    /// 1-based line → rule ids allowlisted on that line.
    pub allows: BTreeMap<usize, BTreeSet<String>>,
}

/// Scan `source` into its masked views.
pub fn lex(source: &str) -> Lexed {
    let bytes = source.as_bytes();
    // Both outputs start as a copy and get ranges blanked in place.
    let mut code: Vec<u8> = bytes.to_vec();
    let mut strings_kept: Vec<u8> = bytes.to_vec();
    let mut allows: BTreeMap<usize, BTreeSet<String>> = BTreeMap::new();

    let blank = |buf: &mut [u8], from: usize, to: usize| {
        for b in &mut buf[from..to] {
            if *b != b'\n' {
                *b = b' ';
            }
        }
    };

    let mut line = 1usize;
    // Does the current line contain any code before position `i`?
    // Decides whether a comment directive targets its own line or the
    // next one.
    let mut line_has_code = false;
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                line_has_code = false;
                i += 1;
            }
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                collect_allow(source, start, i, line, !line_has_code, &mut allows);
                blank(&mut code, start, i);
                blank(&mut strings_kept, start, i);
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                let start_standalone = !line_has_code;
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                // `line` is now the line the comment *ends* on; a
                // standalone block comment allowlists the next line.
                collect_allow(source, start, i, line, start_standalone, &mut allows);
                blank(&mut code, start, i);
                blank(&mut strings_kept, start, i);
            }
            b'"' => {
                let end = scan_string(bytes, i, &mut line);
                blank(&mut code, i, end);
                i = end;
                line_has_code = true;
            }
            b'r' | b'b' if is_raw_or_byte_string(bytes, i) => {
                let lit_start = i;
                // Skip the `r`, `b`, or `br` prefix to the `#`s/quote.
                let mut j = i + 1;
                if bytes.get(j) == Some(&b'r') {
                    j += 1;
                }
                let mut hashes = 0usize;
                while bytes.get(j) == Some(&b'#') {
                    hashes += 1;
                    j += 1;
                }
                // `j` is at the opening quote.
                let end = if hashes == 0 && !raw_prefix(bytes, i) {
                    scan_string(bytes, j, &mut line)
                } else {
                    scan_raw_string(bytes, j, hashes, &mut line)
                };
                blank(&mut code, lit_start, end);
                i = end;
                line_has_code = true;
            }
            b'\'' => {
                if let Some(end) = scan_char_literal(source, i) {
                    blank(&mut code, i, end);
                    i = end;
                } else {
                    i += 1; // a lifetime; leave it visible
                }
                line_has_code = true;
            }
            _ => {
                if !b.is_ascii_whitespace() {
                    line_has_code = true;
                }
                i += 1;
            }
        }
    }

    // The inputs were valid UTF-8 and blanking replaces whole bytes of
    // multi-byte characters with spaces, but go through the checked
    // constructor anyway rather than assert.
    Lexed {
        code: String::from_utf8_lossy(&code).into_owned(),
        code_with_strings: String::from_utf8_lossy(&strings_kept).into_owned(),
        allows,
    }
}

/// Is `r…` / `b…` at `i` the start of a string-ish literal (rather
/// than an identifier like `radius` or a raw identifier `r#type`)?
fn is_raw_or_byte_string(bytes: &[u8], i: usize) -> bool {
    // Must not be the tail of a longer identifier: `for b"x"` vs `ab"x"`.
    if i > 0 && is_ident_byte(bytes[i - 1]) {
        return false;
    }
    let mut j = i + 1;
    if bytes[i] == b'b' && bytes.get(j) == Some(&b'r') {
        j += 1;
    }
    let mut saw_hash = false;
    while bytes.get(j) == Some(&b'#') {
        saw_hash = true;
        j += 1;
    }
    match bytes.get(j) {
        Some(&b'"') => true,
        Some(&b'\'') if bytes[i] == b'b' && !saw_hash => true, // byte char b'x'
        _ => false,
    }
}

/// Does the literal at `i` have an `r` (raw) prefix?
fn raw_prefix(bytes: &[u8], i: usize) -> bool {
    bytes[i] == b'r' || (bytes[i] == b'b' && bytes.get(i + 1) == Some(&b'r'))
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Scan a plain (escaped) string or byte-char literal starting at the
/// opening quote at `start`; returns the index one past the closing
/// quote. Tracks newlines (multi-line strings are legal).
fn scan_string(bytes: &[u8], start: usize, line: &mut usize) -> usize {
    let quote = bytes[start];
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => {
                // An escaped newline (line-continuation) still ends a
                // source line; keep the count honest.
                if bytes.get(i + 1) == Some(&b'\n') {
                    *line += 1;
                }
                i += 2;
            }
            b'\n' => {
                *line += 1;
                i += 1;
            }
            b if b == quote => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Scan a raw string whose opening quote is at `start` with `hashes`
/// trailing `#`s; returns the index one past the final `#`.
fn scan_raw_string(bytes: &[u8], start: usize, hashes: usize, line: &mut usize) -> usize {
    let mut i = start + 1;
    while i < bytes.len() {
        if bytes[i] == b'\n' {
            *line += 1;
            i += 1;
            continue;
        }
        if bytes[i] == b'"' {
            let mut j = i + 1;
            let mut seen = 0usize;
            while seen < hashes && bytes.get(j) == Some(&b'#') {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return j;
            }
        }
        i += 1;
    }
    i
}

/// If `'` at `i` starts a char literal (not a lifetime), return the
/// index one past its closing quote.
fn scan_char_literal(source: &str, i: usize) -> Option<usize> {
    let rest = &source[i + 1..];
    let mut chars = rest.char_indices();
    let (_, first) = chars.next()?;
    if first == '\\' {
        // Escaped char: scan to the next unescaped closing quote.
        let bytes = source.as_bytes();
        let mut j = i + 2;
        while j < bytes.len() {
            match bytes[j] {
                b'\\' => j += 2,
                b'\'' => return Some(j + 1),
                b'\n' => return None, // malformed; treat as lifetime
                _ => j += 1,
            }
        }
        None
    } else if first == '\'' || first == '\n' {
        None
    } else {
        // One char then a closing quote ⇒ char literal; anything else
        // (`'a>` / `'static`) is a lifetime.
        match chars.next() {
            Some((off, '\'')) => Some(i + 1 + off + 1),
            _ => None,
        }
    }
}

/// Parse `lint:allow(L1, L2): reason` out of the comment text in
/// `source[start..end]` and record the allowlisted rules.
fn collect_allow(
    source: &str,
    start: usize,
    end: usize,
    line: usize,
    standalone: bool,
    allows: &mut BTreeMap<usize, BTreeSet<String>>,
) {
    let text = &source[start..end.min(source.len())];
    let Some(at) = text.find("lint:allow(") else {
        return;
    };
    let after = &text[at + "lint:allow(".len()..];
    let Some(close) = after.find(')') else {
        return;
    };
    let target = if standalone { line + 1 } else { line };
    let entry = allows.entry(target).or_default();
    for rule in after[..close].split(',') {
        let rule = rule.trim();
        if !rule.is_empty() {
            entry.insert(rule.to_string());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_comments_are_blanked() {
        let l = lex("let x = 1; // unwrap() here is prose\n");
        assert!(!l.code.contains("unwrap"));
        assert!(l.code.contains("let x = 1;"));
    }

    #[test]
    fn doc_comments_are_blanked() {
        let l = lex("/// server.unwrap() example\n//! x.unwrap()\nfn f() {}\n");
        assert!(!l.code.contains("unwrap"));
        assert!(l.code.contains("fn f() {}"));
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner unwrap() */ still comment */ fn g() {}");
        assert!(!l.code.contains("unwrap"));
        assert!(l.code.contains("fn g() {}"));
    }

    #[test]
    fn string_contents_blanked_in_code_view_only() {
        let src = "let s = \"x as u16\"; let y = n as u16;";
        let l = lex(src);
        assert_eq!(l.code.matches("as u16").count(), 1);
        assert_eq!(l.code_with_strings.matches("as u16").count(), 2);
    }

    #[test]
    fn raw_strings_and_byte_strings() {
        let src = "let a = r#\"quote \" as u16\"#; let b = b\"as u16\"; let c = br##\"x\"# as u16\"##;";
        let l = lex(src);
        assert!(!l.code.contains("as u16"));
        assert!(l.code.contains("let a ="));
        assert!(l.code.contains("let c ="));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let q = '\"'; let n = '\\n'; let u = 'é'; let s = \"as u16\"; }";
        let l = lex(src);
        // The quote char literal must not open a string that swallows
        // the rest of the line.
        assert!(l.code.contains("let n ="));
        assert!(l.code.contains("let s ="));
        assert!(!l.code.contains("as u16"));
    }

    #[test]
    fn multiline_strings_keep_line_numbers() {
        let src = "let s = \"line one\n as u16 \n\"; // lint:allow(L1): prose\nlet t = 1;\n";
        let l = lex(src);
        assert!(!l.code.contains("as u16"));
        // The directive sits on line 3 (where the comment lives).
        assert!(l.allows.get(&3).is_some_and(|r| r.contains("L1")));
    }

    #[test]
    fn escaped_newline_continuations_keep_line_numbers() {
        // A `\`-continued string spans two source lines; directives
        // after it must land on the right line.
        let src = "let m = \"part one \\\n part two\";\n// lint:allow(L6): next\nlet x = 1;\n";
        let l = lex(src);
        assert!(l.allows.get(&4).is_some_and(|r| r.contains("L6")));
        assert_eq!(l.code.lines().count(), src.lines().count());
    }

    #[test]
    fn trailing_allow_hits_own_line_standalone_hits_next() {
        let src = "let a = x as u16; // lint:allow(L1): bounded\n// lint:allow(L2, L4): next line\nlet b = 1;\n";
        let l = lex(src);
        assert!(l.allows.get(&1).is_some_and(|r| r.contains("L1")));
        let next = l.allows.get(&3).cloned().unwrap_or_default();
        assert!(next.contains("L2") && next.contains("L4"));
    }
}
