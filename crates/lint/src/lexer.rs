//! A real Rust token stream plus the masked views the lexical rules
//! scan.
//!
//! The linter used to be purely lexical (substring patterns over two
//! masked copies of a file); the flow-aware rules (lock-order,
//! atomic-ordering, determinism-flow) need actual tokens with actual
//! positions. This module produces both from one pass:
//!
//! * [`Lexed::tokens`] — the token stream: identifiers (keywords are
//!   identifiers here), lifetimes, string/char/numeric literals, and
//!   single-byte punctuation, each carrying its byte range and 1-based
//!   line. Comments are not tokens; their only trace is the allow
//!   directives collected from them.
//! * [`Lexed::code`] — comments **and** string/char literal contents
//!   blanked to spaces (newlines preserved, so byte offsets map to the
//!   original line numbers). The substring rules scan this view.
//! * [`Lexed::code_with_strings`] — only comments blanked. The shim
//!   hygiene rule scans this view, because a forbidden
//!   `#[path = "../../shims/…"]` lives inside a string literal.
//!
//! While scanning comments the lexer also collects
//! `lint:allow(RULE[, RULE…]): reason` directives. A trailing comment
//! allowlists its own line; a comment that is alone on its line
//! allowlists the next line.
//!
//! Handled syntax: line and (nested) block comments, plain strings
//! with escapes, raw strings `r"…"` / `r#"…"#` (any number of `#`s),
//! byte and C strings (`b"…"`, `br#"…"#`, `c"…"`, `cr#"…"#`), char
//! and byte-char literals including multi-byte escapes (`'\\'`,
//! `'\''`, `'\u{1F600}'`, `'\x7f'`), raw identifiers (`r#type`),
//! numeric literals (so `1.5` never reads as a method call), and the
//! char-literal vs. lifetime ambiguity (`'a'` vs. `<'a>`).
//!
//! The predecessor masker scanned escaped char literals with a
//! start-offset bug: in `'\\'` it treated the *escaped* backslash as a
//! second escape opener, overshot the closing quote, and swallowed
//! everything up to the next apostrophe on the line — masking real
//! code (`let sep = '\\'; let bad = (n as u16, 'x');` hid the cast).
//! The token scanner consumes escapes by grammar instead of by
//! backslash-hopping, so that class of false negative is gone;
//! `tests/lexer_regressions.rs` pins it alongside the raw-string and
//! nested-comment shapes that already worked.

use std::collections::{BTreeMap, BTreeSet};

/// What one token is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers like `r#type`).
    Ident,
    /// A lifetime (`'a`, `'static`), quote included in the range.
    Lifetime,
    /// Any string-ish literal: `"…"`, `r#"…"#`, `b"…"`, `c"…"`.
    Str,
    /// A char or byte-char literal: `'x'`, `b'\n'`.
    Char,
    /// A numeric literal (`42`, `0xff_u16`, `1.5e3`).
    Num,
    /// One byte of punctuation.
    Punct(u8),
}

/// One token: kind plus byte range and the 1-based line it starts on.
#[derive(Clone, Copy, Debug)]
pub struct Token {
    /// What it is.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based source line of `start`.
    pub line: usize,
}

/// The token stream and masked views of one source file.
pub struct Lexed<'a> {
    /// The source the token ranges index into.
    pub src: &'a str,
    /// The token stream (comments and whitespace omitted).
    pub tokens: Vec<Token>,
    /// Comments and string/char contents blanked.
    pub code: String,
    /// Only comments blanked (string literals preserved).
    pub code_with_strings: String,
    /// 1-based line → rule ids allowlisted on that line.
    pub allows: BTreeMap<usize, BTreeSet<String>>,
}

impl<'a> Lexed<'a> {
    /// The source text of token `i`.
    pub fn text(&self, i: usize) -> &'a str {
        let t = &self.tokens[i];
        &self.src[t.start..t.end]
    }

    /// Is token `i` the identifier `word`?
    pub fn is_ident(&self, i: usize, word: &str) -> bool {
        self.tokens[i].kind == TokenKind::Ident && self.text(i) == word
    }

    /// Is token `i` the punctuation byte `b`?
    pub fn is_punct(&self, i: usize, b: u8) -> bool {
        self.tokens[i].kind == TokenKind::Punct(b)
    }

    /// Does line `line` allowlist `rule`?
    pub fn allowed(&self, line: usize, rule: &str) -> bool {
        self.allows.get(&line).is_some_and(|r| r.contains(rule))
    }
}

/// Scan `source` into its token stream and masked views.
pub fn lex(source: &str) -> Lexed<'_> {
    Scanner::new(source).run()
}

struct Scanner<'a> {
    src: &'a str,
    bytes: &'a [u8],
    i: usize,
    line: usize,
    /// Does the current line have a token before position `i`? Decides
    /// whether a comment directive targets its own line or the next.
    line_has_code: bool,
    tokens: Vec<Token>,
    code: Vec<u8>,
    strings_kept: Vec<u8>,
    allows: BTreeMap<usize, BTreeSet<String>>,
}

impl<'a> Scanner<'a> {
    fn new(src: &'a str) -> Self {
        Scanner {
            src,
            bytes: src.as_bytes(),
            i: 0,
            line: 1,
            line_has_code: false,
            tokens: Vec::new(),
            code: src.as_bytes().to_vec(),
            strings_kept: src.as_bytes().to_vec(),
            allows: BTreeMap::new(),
        }
    }

    fn run(mut self) -> Lexed<'a> {
        while self.i < self.bytes.len() {
            let b = self.bytes[self.i];
            match b {
                b'\n' => {
                    self.line += 1;
                    self.line_has_code = false;
                    self.i += 1;
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string_literal(self.i),
                b'r' | b'b' | b'c' if self.string_prefix_at(self.i) => self.prefixed_literal(),
                b'r' if self.peek(1) == Some(b'#') && self.ident_follows(self.i + 2) => {
                    // Raw identifier `r#type`.
                    self.ident()
                }
                b'\'' => self.quote(),
                b'0'..=b'9' => self.number(),
                _ if is_ident_start(b) => self.ident(),
                _ if b.is_ascii_whitespace() => self.i += 1,
                _ => {
                    self.push(TokenKind::Punct(b), self.i, self.i + 1);
                    self.i += 1;
                }
            }
        }
        // Blanking replaces whole bytes of multi-byte characters with
        // spaces only inside literals/comments (never splitting a
        // character across a blank boundary), but go through the
        // checked constructor anyway rather than assert.
        Lexed {
            src: self.src,
            tokens: self.tokens,
            code: String::from_utf8_lossy(&self.code).into_owned(),
            code_with_strings: String::from_utf8_lossy(&self.strings_kept).into_owned(),
            allows: self.allows,
        }
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.i + ahead).copied()
    }

    fn push(&mut self, kind: TokenKind, start: usize, end: usize) {
        self.tokens.push(Token {
            kind,
            start,
            end,
            line: self.line,
        });
        self.line_has_code = true;
    }

    /// Blank `[from, to)` in `code` (and, for comments, the
    /// strings-kept view too), preserving newlines.
    fn blank(&mut self, from: usize, to: usize, both: bool) {
        for j in from..to.min(self.code.len()) {
            if self.code[j] != b'\n' {
                self.code[j] = b' ';
                if both {
                    self.strings_kept[j] = b' ';
                }
            }
        }
    }

    fn line_comment(&mut self) {
        let start = self.i;
        while self.i < self.bytes.len() && self.bytes[self.i] != b'\n' {
            self.i += 1;
        }
        self.collect_allow(start, self.i, !self.line_has_code);
        self.blank(start, self.i, true);
    }

    fn block_comment(&mut self) {
        let start = self.i;
        let standalone = !self.line_has_code;
        let mut depth = 1usize;
        self.i += 2;
        while self.i < self.bytes.len() && depth > 0 {
            match self.bytes[self.i] {
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    depth += 1;
                    self.i += 2;
                }
                b'*' if self.peek(1) == Some(b'/') => {
                    depth -= 1;
                    self.i += 2;
                }
                _ => self.i += 1,
            }
        }
        // `line` is now the line the comment *ends* on; a standalone
        // block comment allowlists the next line.
        self.collect_allow(start, self.i, standalone);
        self.blank(start, self.i, true);
    }

    /// Is `r…` / `b…` / `c…` at `at` the start of a string-ish literal
    /// or byte-char (rather than an identifier like `radius` or a raw
    /// identifier `r#type`)?
    fn string_prefix_at(&self, at: usize) -> bool {
        // Must not be the tail of a longer identifier: `for b"x"` vs `ab"x"`.
        if at > 0 && is_ident_byte(self.bytes[at - 1]) {
            return false;
        }
        let mut j = at + 1;
        // `br` / `cr` raw variants.
        if (self.bytes[at] == b'b' || self.bytes[at] == b'c')
            && self.bytes.get(j) == Some(&b'r')
        {
            j += 1;
        }
        let raw = j > at + 1 || self.bytes[at] == b'r';
        let mut hashes = 0usize;
        while self.bytes.get(j) == Some(&b'#') {
            hashes += 1;
            j += 1;
        }
        if hashes > 0 && !raw {
            return false;
        }
        match self.bytes.get(j) {
            Some(&b'"') => true,
            // Byte char `b'x'` (no raw/hash form exists).
            Some(&b'\'') => self.bytes[at] == b'b' && hashes == 0 && j == at + 1,
            _ => false,
        }
    }

    /// Does an identifier start at `at`? (For raw-identifier detection.)
    fn ident_follows(&self, at: usize) -> bool {
        self.bytes.get(at).copied().is_some_and(is_ident_start)
    }

    /// A literal beginning with an `r`/`b`/`c` prefix: raw string,
    /// byte string, C string, or byte-char.
    fn prefixed_literal(&mut self) {
        let start = self.i;
        let mut j = start + 1;
        if (self.bytes[start] == b'b' || self.bytes[start] == b'c')
            && self.bytes.get(j) == Some(&b'r')
        {
            j += 1;
        }
        let raw = j > start + 1 || self.bytes[start] == b'r';
        let mut hashes = 0usize;
        while self.bytes.get(j) == Some(&b'#') {
            hashes += 1;
            j += 1;
        }
        if self.bytes.get(j) == Some(&b'\'') {
            // Byte char `b'x'`: escape-aware like a char literal.
            let end = self
                .scan_char_body(j)
                .unwrap_or_else(|| self.bytes.len().min(j + 2));
            self.push(TokenKind::Char, start, end);
            self.blank(start, end, false);
            self.i = end;
            return;
        }
        // `j` is at the opening quote.
        let end = if raw {
            self.scan_raw_string(j, hashes)
        } else {
            self.scan_string(j)
        };
        self.push(TokenKind::Str, start, end);
        self.blank(start, end, false);
        self.i = end;
    }

    fn string_literal(&mut self, start: usize) {
        let end = self.scan_string(start);
        self.push(TokenKind::Str, start, end);
        self.blank(start, end, false);
        self.i = end;
    }

    /// Scan a plain (escaped) string starting at its opening quote;
    /// returns the index one past the closing quote. Tracks newlines
    /// (multi-line strings are legal).
    fn scan_string(&mut self, start: usize) -> usize {
        let quote = self.bytes[start];
        let mut i = start + 1;
        while i < self.bytes.len() {
            match self.bytes[i] {
                b'\\' => {
                    // An escaped newline (line continuation) still ends
                    // a source line; keep the count honest.
                    if self.bytes.get(i + 1) == Some(&b'\n') {
                        self.line += 1;
                    }
                    i += 2;
                }
                b'\n' => {
                    self.line += 1;
                    i += 1;
                }
                b if b == quote => return i + 1,
                _ => i += 1,
            }
        }
        i
    }

    /// Scan a raw string whose opening quote is at `start` with
    /// `hashes` trailing `#`s; returns the index one past the final
    /// `#` (raw strings have no escapes).
    fn scan_raw_string(&mut self, start: usize, hashes: usize) -> usize {
        let mut i = start + 1;
        while i < self.bytes.len() {
            match self.bytes[i] {
                b'\n' => {
                    self.line += 1;
                    i += 1;
                }
                b'"' => {
                    let mut j = i + 1;
                    let mut seen = 0usize;
                    while seen < hashes && self.bytes.get(j) == Some(&b'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        return j;
                    }
                    i += 1;
                }
                _ => i += 1,
            }
        }
        i
    }

    /// A `'` token: char literal or lifetime.
    fn quote(&mut self) {
        let start = self.i;
        if let Some(end) = self.scan_char_body(start) {
            self.push(TokenKind::Char, start, end);
            self.blank(start, end, false);
            self.i = end;
            return;
        }
        // A lifetime: `'` plus the identifier after it, if any.
        let mut j = start + 1;
        if self.ident_follows(j) {
            while j < self.bytes.len() && is_ident_byte(self.bytes[j]) {
                j += 1;
            }
            self.push(TokenKind::Lifetime, start, j);
        } else {
            self.push(TokenKind::Punct(b'\''), start, start + 1);
            j = start + 1;
        }
        self.i = j;
    }

    /// If a char literal starts at the quote at `start`, return the
    /// index one past its closing quote. Consumes escapes by grammar
    /// (`\x41`, `\u{…}`, `\n`, `\\`, `\'`) instead of backslash-
    /// hopping, so `'\\'` and `'\''` close exactly where rustc says
    /// they do.
    fn scan_char_body(&self, start: usize) -> Option<usize> {
        let mut j = start + 1;
        match self.bytes.get(j)? {
            b'\\' => {
                j += 1;
                match self.bytes.get(j)? {
                    b'x' => j += 3,             // \x7f
                    b'u' => {
                        // \u{…}
                        if self.bytes.get(j + 1) != Some(&b'{') {
                            return None;
                        }
                        j += 2;
                        while self.bytes.get(j).is_some_and(|&b| b != b'}' && b != b'\n') {
                            j += 1;
                        }
                        j += 1; // past `}`
                    }
                    b'\n' => return None, // malformed; treat as lifetime
                    _ => j += 1,          // \n \t \\ \' \" \0
                }
            }
            b'\'' | b'\n' => return None, // `''` or bare `'` at EOL
            _ => {
                // One char (possibly multi-byte) then a closing quote.
                let rest = &self.src[j..];
                let ch = rest.chars().next()?;
                j += ch.len_utf8();
            }
        }
        if self.bytes.get(j) == Some(&b'\'') {
            Some(j + 1)
        } else {
            None // `'a>` / `'static` — a lifetime
        }
    }

    fn number(&mut self) {
        let start = self.i;
        let mut j = start + 1;
        while let Some(&b) = self.bytes.get(j) {
            if b.is_ascii_alphanumeric() || b == b'_' {
                j += 1;
            } else if b == b'.'
                && self.bytes.get(j + 1) != Some(&b'.')
                && self.bytes.get(j + 1).is_some_and(|b| b.is_ascii_digit())
            {
                // `1.5` continues the literal; `0..n` and `1.max(2)` don't.
                j += 1;
            } else if (b == b'+' || b == b'-')
                && matches!(self.bytes.get(j - 1), Some(&b'e') | Some(&b'E'))
                && self.bytes.get(j + 1).is_some_and(|b| b.is_ascii_digit())
            {
                // Exponent sign: `1e-3`.
                j += 1;
            } else {
                break;
            }
        }
        self.push(TokenKind::Num, start, j);
        self.i = j;
    }

    fn ident(&mut self) {
        let start = self.i;
        let mut j = start;
        if self.bytes[j] == b'r' && self.bytes.get(j + 1) == Some(&b'#') {
            j += 2; // raw identifier prefix
        }
        while j < self.bytes.len() && is_ident_byte(self.bytes[j]) {
            j += 1;
        }
        self.push(TokenKind::Ident, start, j);
        self.i = j;
    }

    /// Parse `lint:allow(L1, L2): reason` out of the comment text in
    /// `src[start..end]` and record the allowlisted rules.
    fn collect_allow(&mut self, start: usize, end: usize, standalone: bool) {
        let text = &self.src[start..end.min(self.src.len())];
        let Some(at) = text.find("lint:allow(") else {
            return;
        };
        let after = &text[at + "lint:allow(".len()..];
        let Some(close) = after.find(')') else {
            return;
        };
        let target = if standalone { self.line + 1 } else { self.line };
        let entry = self.allows.entry(target).or_default();
        for rule in after[..close].split(',') {
            let rule = rule.trim();
            if !rule.is_empty() {
                entry.insert(rule.to_string());
            }
        }
    }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

/// Given the token index of an opening delimiter (`{`, `(`, `[`),
/// return the index of its matching closer, honouring nesting of the
/// same delimiter pair.
pub fn matching(tokens: &[Token], open: usize) -> Option<usize> {
    let (o, c) = match tokens[open].kind {
        TokenKind::Punct(b'{') => (b'{', b'}'),
        TokenKind::Punct(b'(') => (b'(', b')'),
        TokenKind::Punct(b'[') => (b'[', b']'),
        _ => return None,
    };
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        match t.kind {
            TokenKind::Punct(b) if b == o => depth += 1,
            TokenKind::Punct(b) if b == c => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_comments_are_blanked() {
        let l = lex("let x = 1; // unwrap() here is prose\n");
        assert!(!l.code.contains("unwrap"));
        assert!(l.code.contains("let x = 1;"));
    }

    #[test]
    fn doc_comments_are_blanked() {
        let l = lex("/// server.unwrap() example\n//! x.unwrap()\nfn f() {}\n");
        assert!(!l.code.contains("unwrap"));
        assert!(l.code.contains("fn f() {}"));
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner unwrap() */ still comment */ fn g() {}");
        assert!(!l.code.contains("unwrap"));
        assert!(l.code.contains("fn g() {}"));
    }

    #[test]
    fn string_contents_blanked_in_code_view_only() {
        let src = "let s = \"x as u16\"; let y = n as u16;";
        let l = lex(src);
        assert_eq!(l.code.matches("as u16").count(), 1);
        assert_eq!(l.code_with_strings.matches("as u16").count(), 2);
    }

    #[test]
    fn raw_strings_and_byte_strings() {
        let src = "let a = r#\"quote \" as u16\"#; let b = b\"as u16\"; let c = br##\"x\"# as u16\"##;";
        let l = lex(src);
        assert!(!l.code.contains("as u16"));
        assert!(l.code.contains("let a ="));
        assert!(l.code.contains("let c ="));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let q = '\"'; let n = '\\n'; let u = 'é'; let s = \"as u16\"; }";
        let l = lex(src);
        // The quote char literal must not open a string that swallows
        // the rest of the line.
        assert!(l.code.contains("let n ="));
        assert!(l.code.contains("let s ="));
        assert!(!l.code.contains("as u16"));
    }

    #[test]
    fn escaped_backslash_char_does_not_swallow_the_line() {
        // The predecessor masked `'\\'` one byte too greedily and
        // swallowed everything to the next apostrophe on the line.
        let src = "let sep = '\\\\'; let bad = (n as u16, 'x'); let q = '\\''; let worse = n as u16;";
        let l = lex(src);
        assert_eq!(l.code.matches("as u16").count(), 2, "{}", l.code);
        assert!(l.code.contains("let bad ="));
        assert!(l.code.contains("let worse ="));
    }

    #[test]
    fn multibyte_escapes_close_where_rustc_says() {
        let src = "let a = '\\u{1F600}'; let b = '\\x7f'; let bad = n as u16;";
        let l = lex(src);
        assert_eq!(l.code.matches("as u16").count(), 1);
        let chars: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .collect();
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn multiline_strings_keep_line_numbers() {
        let src = "let s = \"line one\n as u16 \n\"; // lint:allow(L1): prose\nlet t = 1;\n";
        let l = lex(src);
        assert!(!l.code.contains("as u16"));
        // The directive sits on line 3 (where the comment lives).
        assert!(l.allows.get(&3).is_some_and(|r| r.contains("L1")));
    }

    #[test]
    fn escaped_newline_continuations_keep_line_numbers() {
        // A `\`-continued string spans two source lines; directives
        // after it must land on the right line.
        let src = "let m = \"part one \\\n part two\";\n// lint:allow(L6): next\nlet x = 1;\n";
        let l = lex(src);
        assert!(l.allows.get(&4).is_some_and(|r| r.contains("L6")));
        assert_eq!(l.code.lines().count(), src.lines().count());
    }

    #[test]
    fn trailing_allow_hits_own_line_standalone_hits_next() {
        let src = "let a = x as u16; // lint:allow(L1): bounded\n// lint:allow(L2, L4): next line\nlet b = 1;\n";
        let l = lex(src);
        assert!(l.allows.get(&1).is_some_and(|r| r.contains("L1")));
        let next = l.allows.get(&3).cloned().unwrap_or_default();
        assert!(next.contains("L2") && next.contains("L4"));
    }

    #[test]
    fn raw_identifiers_are_idents_not_strings() {
        let src = "let r#type = 1; let s = \"as u16\";";
        let l = lex(src);
        assert!(!l.code.contains("as u16"));
        assert!(l.tokens.iter().any(|t| t.kind == TokenKind::Ident
            && &src[t.start..t.end] == "r#type"));
    }

    #[test]
    fn numbers_lex_as_single_tokens() {
        let src = "let a = 1.5e-3; let b = 0xff_u16; for i in 0..10 { let c = 1.max(2); }";
        let l = lex(src);
        let nums: Vec<&str> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Num)
            .map(|t| &src[t.start..t.end])
            .collect();
        assert_eq!(nums, vec!["1.5e-3", "0xff_u16", "0", "10", "1", "2"]);
    }

    #[test]
    fn token_lines_are_accurate() {
        let src = "fn a() {}\n\nfn b() {\n    x.lock();\n}\n";
        let l = lex(src);
        let lock = l
            .tokens
            .iter()
            .position(|t| t.kind == TokenKind::Ident && &src[t.start..t.end] == "lock")
            .expect("lock token");
        assert_eq!(l.tokens[lock].line, 4);
    }

    #[test]
    fn matching_delimiters() {
        let src = "fn f(a: (u8, u8)) { if x { y(); } }";
        let l = lex(src);
        let open = l.tokens.iter().position(|t| t.kind == TokenKind::Punct(b'{')).expect("open");
        let close = matching(&l.tokens, open).expect("close");
        assert_eq!(close, l.tokens.len() - 1);
    }
}
