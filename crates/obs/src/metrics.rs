//! The process-wide metrics registry: named counters, gauges, and
//! fixed-bucket latency histograms.
//!
//! Unlike tracing (off unless subscribed), metrics are always on —
//! their hot path is one `fetch_add` on an `Arc`-shared atomic, and
//! call sites cache the `Arc` so the name lookup happens once. The
//! serving layer's `/metrics` endpoint renders a registry as the plain
//! `name value` text format; counter names end in `_total` by
//! convention so clients can check monotonicity without a schema.
//!
//! The default registry ([`global`]) is shared by the whole process,
//! putting serving-layer and pipeline metrics in one namespace; tests
//! that assert exact counts construct their own [`Registry`].

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// A monotonic counter. Name it `*_total`.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways (queue depth, active
/// connections).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Overwrite the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtract `n`.
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Upper bucket bounds in microseconds; the last bucket is unbounded.
const BOUNDS_US: [u64; 16] = [
    50,
    100,
    200,
    500,
    1_000,
    2_000,
    5_000,
    10_000,
    20_000,
    50_000,
    100_000,
    200_000,
    500_000,
    1_000_000,
    5_000_000,
    u64::MAX,
];

/// A fixed-bucket duration histogram (microsecond resolution), the
/// generalization of the serving layer's original latency histogram.
/// Lock-free: recording is a `fetch_add` into the matching bucket plus
/// running-sum and running-max updates (averages are computable from
/// `/metrics` as `_sum_us / _count`).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BOUNDS_US.len()],
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Record one observation. Durations beyond `u64::MAX` µs saturate
    /// into the unbounded top bucket instead of wrapping.
    pub fn record(&self, d: Duration) {
        self.record_us(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Record one observation given directly in microseconds.
    pub fn record_us(&self, us: u64) {
        let idx = BOUNDS_US.iter().position(|&b| us <= b).unwrap_or(BOUNDS_US.len() - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Sum of all observations, µs (monotonic; wraps only after
    /// ~585 millennia of accumulated latency).
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// Largest observation seen, µs (monotonic, 0 when empty).
    pub fn max_us(&self) -> u64 {
        self.max_us.load(Ordering::Relaxed)
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The upper bound (µs) of the bucket containing quantile `q`
    /// (0 < q ≤ 1). Returns 0 with no observations; `u64::MAX` means
    /// the unbounded top bucket.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return BOUNDS_US[i];
            }
        }
        BOUNDS_US[BOUNDS_US.len() - 1]
    }
}

/// A namespace of metrics. Get-or-create by name; instruments are
/// `Arc`-shared so call sites cache them and skip the lookup lock on
/// the hot path.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

/// The canonical key for a labeled instrument: `name{k="v",k2="v2"}`
/// with the labels sorted by key, values escaped, no spaces — so one
/// label set always maps to one map entry and `/metrics` lines stay
/// `name value` (two whitespace-split tokens). An empty label set is
/// just `name`.
fn labeled_key(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut sorted: Vec<(&str, &str)> = labels.to_vec();
    sorted.sort();
    let mut key = String::with_capacity(name.len() + 16 * sorted.len());
    key.push_str(name);
    key.push('{');
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            key.push(',');
        }
        key.push_str(k);
        key.push_str("=\"");
        for c in v.chars() {
            match c {
                '"' => key.push_str("\\\""),
                '\\' => key.push_str("\\\\"),
                // The exposition is line-oriented with space-separated
                // name/value; keep label values on one token.
                '\n' | ' ' => key.push('_'),
                other => key.push(other),
            }
        }
        key.push('"');
    }
    key.push('}');
    key
}

/// Split a stored key back into `(name, label_suffix)` so histogram
/// rendering can put its `_count`/`_p50_us`/… suffix *before* the
/// label braces: `lat{route="a"}` → `lat_count{route="a"}`.
fn split_labels(key: &str) -> (&str, &str) {
    match key.find('{') {
        Some(i) => key.split_at(i),
        None => (key, ""),
    }
}

impl Registry {
    /// An empty registry (tests; the process shares [`global`]).
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Get or create the counter named `name`.
    // A thread that panicked mid-`entry` cannot leave the BTreeMap
    // half-mutated (inserts complete or don't); recover poisoned locks
    // instead of cascading the panic into every metrics user.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap_or_else(|p| p.into_inner());
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Get or create a labeled counter:
    /// `counter_with("serve_requests_total", &[("route","rdap"),("status","200")])`.
    /// Label order never matters — the stored key sorts them.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.counter(&labeled_key(name, labels))
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().unwrap_or_else(|p| p.into_inner());
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Get or create the histogram named `name`. Rendering emits
    /// `{name}_count`, `{name}_p50_us`, `{name}_p99_us`, `{name}_sum_us`
    /// and `{name}_max_us` lines.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().unwrap_or_else(|p| p.into_inner());
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Get or create a labeled histogram; its render lines put the
    /// statistic suffix before the labels
    /// (`serve_route_latency_p99_us{route="rdap"}`).
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.histogram(&labeled_key(name, labels))
    }

    /// Render every instrument as `name value` lines, sorted by name
    /// (deterministic output for diffing and monotonicity checks).
    /// Labeled instruments render as `name{k="v"} value` and sort by
    /// their full labeled key; unlabeled lines are byte-identical to
    /// what they were before labels existed.
    pub fn render(&self) -> String {
        let mut lines: BTreeMap<String, String> = BTreeMap::new();
        for (name, c) in self.counters.lock().unwrap_or_else(|p| p.into_inner()).iter() {
            lines.insert(name.clone(), c.get().to_string());
        }
        for (name, g) in self.gauges.lock().unwrap_or_else(|p| p.into_inner()).iter() {
            lines.insert(name.clone(), g.get().to_string());
        }
        for (key, h) in self.histograms.lock().unwrap_or_else(|p| p.into_inner()).iter() {
            let (name, labels) = split_labels(key);
            lines.insert(format!("{name}_count{labels}"), h.count().to_string());
            lines.insert(format!("{name}_p50_us{labels}"), h.quantile_us(0.50).to_string());
            lines.insert(format!("{name}_p99_us{labels}"), h.quantile_us(0.99).to_string());
            lines.insert(format!("{name}_sum_us{labels}"), h.sum_us().to_string());
            lines.insert(format!("{name}_max_us{labels}"), h.max_us().to_string());
        }
        let mut out = String::new();
        for (name, value) in lines {
            out.push_str(&name);
            out.push(' ');
            out.push_str(&value);
            out.push('\n');
        }
        out
    }
}

/// The process-wide registry: serving-layer and pipeline metrics share
/// this one namespace.
pub fn global() -> Arc<Registry> {
    static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();
    Arc::clone(GLOBAL.get_or_init(|| Arc::new(Registry::new())))
}

/// Get or create a counter on the [`global`] registry.
pub fn counter(name: &str) -> Arc<Counter> {
    global().counter(name)
}

/// Get or create a gauge on the [`global`] registry.
pub fn gauge(name: &str) -> Arc<Gauge> {
    global().gauge(name)
}

/// Get or create a histogram on the [`global`] registry.
pub fn histogram(name: &str) -> Arc<Histogram> {
    global().histogram(name)
}

/// Get or create a labeled counter on the [`global`] registry.
pub fn counter_with(name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
    global().counter_with(name, labels)
}

/// Get or create a labeled histogram on the [`global`] registry.
pub fn histogram_with(name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
    global().histogram_with(name, labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_register_and_render_sorted() {
        let r = Registry::new();
        r.counter("b_total").add(2);
        r.counter("a_total").inc();
        r.gauge("m_depth").set(7);
        r.gauge("m_depth").sub(3);
        // Same name returns the same instrument.
        assert_eq!(r.counter("b_total").get(), 2);
        assert_eq!(r.render(), "a_total 1\nb_total 2\nm_depth 4\n");
    }

    #[test]
    fn histogram_quantiles() {
        let h = Histogram::default();
        for _ in 0..99 {
            h.record(Duration::from_micros(80));
        }
        h.record(Duration::from_millis(40));
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile_us(0.50), 100); // bucket bound containing 80µs
        assert_eq!(h.quantile_us(0.99), 100);
        assert_eq!(h.quantile_us(1.0), 50_000); // the outlier's bucket
    }

    /// Satellite requirement: quantile edge cases.
    #[test]
    fn histogram_empty_quantile_is_zero() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        for q in [0.0_f64, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile_us(q), 0, "q={q}");
        }
    }

    #[test]
    fn histogram_all_in_one_bucket() {
        let h = Histogram::default();
        for _ in 0..1000 {
            h.record_us(150); // bucket (100, 200]
        }
        for q in [0.01_f64, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile_us(q), 200, "q={q}");
        }
        assert_eq!(h.count(), 1000);
    }

    #[test]
    fn histogram_saturates_on_u64_max_durations() {
        let h = Histogram::default();
        h.record(Duration::MAX); // far beyond u64::MAX µs: saturate, don't wrap
        h.record_us(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile_us(0.5), u64::MAX);
        assert_eq!(h.quantile_us(1.0), u64::MAX);
        // A subsequent small observation still lands in a low bucket.
        h.record_us(10);
        assert_eq!(h.quantile_us(0.01), 50);
    }

    #[test]
    fn histogram_renders_count_and_quantiles() {
        let r = Registry::new();
        let h = r.histogram("latency");
        h.record_us(80);
        let text = r.render();
        assert!(text.contains("latency_count 1\n"), "{text}");
        assert!(text.contains("latency_p50_us 100\n"), "{text}");
        assert!(text.contains("latency_p99_us 100\n"), "{text}");
    }

    #[test]
    fn histogram_tracks_sum_and_max() {
        let r = Registry::new();
        let h = r.histogram("latency");
        h.record_us(80);
        h.record_us(300);
        h.record_us(20);
        assert_eq!(h.sum_us(), 400);
        assert_eq!(h.max_us(), 300);
        let text = r.render();
        // Average computable from the exposition: 400 / 3.
        assert!(text.contains("latency_sum_us 400\n"), "{text}");
        assert!(text.contains("latency_max_us 300\n"), "{text}");
    }

    #[test]
    fn labeled_counters_render_sorted_and_dedupe_on_label_order() {
        let r = Registry::new();
        // Label order must not matter: both orders hit one instrument.
        r.counter_with("req_total", &[("route", "rdap"), ("status", "200")]).inc();
        r.counter_with("req_total", &[("status", "200"), ("route", "rdap")]).inc();
        r.counter_with("req_total", &[("route", "feed"), ("status", "404")]).inc();
        r.counter("req_total").add(3);
        let text = r.render();
        assert!(text.contains("req_total 3\n"), "{text}");
        assert!(
            text.contains("req_total{route=\"rdap\",status=\"200\"} 2\n"),
            "{text}"
        );
        assert!(
            text.contains("req_total{route=\"feed\",status=\"404\"} 1\n"),
            "{text}"
        );
        // Deterministic full ordering (BTreeMap over the labeled key).
        assert_eq!(r.render(), text);
        // Every line still splits into exactly two whitespace tokens.
        for line in text.lines() {
            assert_eq!(line.split_whitespace().count(), 2, "{line}");
        }
    }

    #[test]
    fn labeled_histograms_put_suffix_before_labels() {
        let r = Registry::new();
        r.histogram_with("lat", &[("route", "rdap")]).record_us(80);
        let text = r.render();
        assert!(text.contains("lat_count{route=\"rdap\"} 1\n"), "{text}");
        assert!(text.contains("lat_p50_us{route=\"rdap\"} 100\n"), "{text}");
        assert!(text.contains("lat_p99_us{route=\"rdap\"} 100\n"), "{text}");
        assert!(text.contains("lat_sum_us{route=\"rdap\"} 80\n"), "{text}");
        assert!(text.contains("lat_max_us{route=\"rdap\"} 80\n"), "{text}");
    }

    #[test]
    fn label_values_are_escaped_and_kept_single_token() {
        let key = super::labeled_key("m_total", &[("why", "he said \"hi\" to\\me now")]);
        assert_eq!(key, "m_total{why=\"he_said_\\\"hi\\\"_to\\\\me_now\"}");
        assert_eq!(super::labeled_key("m_total", &[]), "m_total");
    }

    #[test]
    fn global_registry_is_shared() {
        let name = "obs_test_shared_total";
        counter(name).inc();
        counter(name).inc();
        assert!(counter(name).get() >= 2);
        assert!(Arc::ptr_eq(&global(), &global()));
    }
}
