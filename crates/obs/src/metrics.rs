//! The process-wide metrics registry: named counters, gauges, and
//! fixed-bucket latency histograms.
//!
//! Unlike tracing (off unless subscribed), metrics are always on —
//! their hot path is one `fetch_add` on an `Arc`-shared atomic, and
//! call sites cache the `Arc` so the name lookup happens once. The
//! serving layer's `/metrics` endpoint renders a registry as the plain
//! `name value` text format; counter names end in `_total` by
//! convention so clients can check monotonicity without a schema.
//!
//! The default registry ([`global`]) is shared by the whole process,
//! putting serving-layer and pipeline metrics in one namespace; tests
//! that assert exact counts construct their own [`Registry`].

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// A monotonic counter. Name it `*_total`.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways (queue depth, active
/// connections).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Overwrite the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtract `n`.
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Upper bucket bounds in microseconds; the last bucket is unbounded.
const BOUNDS_US: [u64; 16] = [
    50,
    100,
    200,
    500,
    1_000,
    2_000,
    5_000,
    10_000,
    20_000,
    50_000,
    100_000,
    200_000,
    500_000,
    1_000_000,
    5_000_000,
    u64::MAX,
];

/// A fixed-bucket duration histogram (microsecond resolution), the
/// generalization of the serving layer's original latency histogram.
/// Lock-free: recording is one `fetch_add` into the matching bucket.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BOUNDS_US.len()],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// Record one observation. Durations beyond `u64::MAX` µs saturate
    /// into the unbounded top bucket instead of wrapping.
    pub fn record(&self, d: Duration) {
        self.record_us(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Record one observation given directly in microseconds.
    pub fn record_us(&self, us: u64) {
        let idx = BOUNDS_US.iter().position(|&b| us <= b).unwrap_or(BOUNDS_US.len() - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The upper bound (µs) of the bucket containing quantile `q`
    /// (0 < q ≤ 1). Returns 0 with no observations; `u64::MAX` means
    /// the unbounded top bucket.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return BOUNDS_US[i];
            }
        }
        BOUNDS_US[BOUNDS_US.len() - 1]
    }
}

/// A namespace of metrics. Get-or-create by name; instruments are
/// `Arc`-shared so call sites cache them and skip the lookup lock on
/// the hot path.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// An empty registry (tests; the process shares [`global`]).
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("counter map poisoned");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().expect("gauge map poisoned");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Get or create the histogram named `name`. Rendering emits
    /// `{name}_count`, `{name}_p50_us` and `{name}_p99_us` lines.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("histogram map poisoned");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Render every instrument as `name value` lines, sorted by name
    /// (deterministic output for diffing and monotonicity checks).
    pub fn render(&self) -> String {
        let mut lines: BTreeMap<String, String> = BTreeMap::new();
        for (name, c) in self.counters.lock().expect("counter map poisoned").iter() {
            lines.insert(name.clone(), c.get().to_string());
        }
        for (name, g) in self.gauges.lock().expect("gauge map poisoned").iter() {
            lines.insert(name.clone(), g.get().to_string());
        }
        for (name, h) in self.histograms.lock().expect("histogram map poisoned").iter() {
            lines.insert(format!("{name}_count"), h.count().to_string());
            lines.insert(format!("{name}_p50_us"), h.quantile_us(0.50).to_string());
            lines.insert(format!("{name}_p99_us"), h.quantile_us(0.99).to_string());
        }
        let mut out = String::new();
        for (name, value) in lines {
            out.push_str(&name);
            out.push(' ');
            out.push_str(&value);
            out.push('\n');
        }
        out
    }
}

/// The process-wide registry: serving-layer and pipeline metrics share
/// this one namespace.
pub fn global() -> Arc<Registry> {
    static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();
    Arc::clone(GLOBAL.get_or_init(|| Arc::new(Registry::new())))
}

/// Get or create a counter on the [`global`] registry.
pub fn counter(name: &str) -> Arc<Counter> {
    global().counter(name)
}

/// Get or create a gauge on the [`global`] registry.
pub fn gauge(name: &str) -> Arc<Gauge> {
    global().gauge(name)
}

/// Get or create a histogram on the [`global`] registry.
pub fn histogram(name: &str) -> Arc<Histogram> {
    global().histogram(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_register_and_render_sorted() {
        let r = Registry::new();
        r.counter("b_total").add(2);
        r.counter("a_total").inc();
        r.gauge("m_depth").set(7);
        r.gauge("m_depth").sub(3);
        // Same name returns the same instrument.
        assert_eq!(r.counter("b_total").get(), 2);
        assert_eq!(r.render(), "a_total 1\nb_total 2\nm_depth 4\n");
    }

    #[test]
    fn histogram_quantiles() {
        let h = Histogram::default();
        for _ in 0..99 {
            h.record(Duration::from_micros(80));
        }
        h.record(Duration::from_millis(40));
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile_us(0.50), 100); // bucket bound containing 80µs
        assert_eq!(h.quantile_us(0.99), 100);
        assert_eq!(h.quantile_us(1.0), 50_000); // the outlier's bucket
    }

    /// Satellite requirement: quantile edge cases.
    #[test]
    fn histogram_empty_quantile_is_zero() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        for q in [0.0_f64, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile_us(q), 0, "q={q}");
        }
    }

    #[test]
    fn histogram_all_in_one_bucket() {
        let h = Histogram::default();
        for _ in 0..1000 {
            h.record_us(150); // bucket (100, 200]
        }
        for q in [0.01_f64, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile_us(q), 200, "q={q}");
        }
        assert_eq!(h.count(), 1000);
    }

    #[test]
    fn histogram_saturates_on_u64_max_durations() {
        let h = Histogram::default();
        h.record(Duration::MAX); // far beyond u64::MAX µs: saturate, don't wrap
        h.record_us(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile_us(0.5), u64::MAX);
        assert_eq!(h.quantile_us(1.0), u64::MAX);
        // A subsequent small observation still lands in a low bucket.
        h.record_us(10);
        assert_eq!(h.quantile_us(0.01), 50);
    }

    #[test]
    fn histogram_renders_count_and_quantiles() {
        let r = Registry::new();
        let h = r.histogram("latency");
        h.record_us(80);
        let text = r.render();
        assert!(text.contains("latency_count 1\n"), "{text}");
        assert!(text.contains("latency_p50_us 100\n"), "{text}");
        assert!(text.contains("latency_p99_us 100\n"), "{text}");
    }

    #[test]
    fn global_registry_is_shared() {
        let name = "obs_test_shared_total";
        counter(name).inc();
        counter(name).inc();
        assert!(counter(name).get() >= 2);
        assert!(Arc::ptr_eq(&global(), &global()));
    }
}
