//! # drywells-obs
//!
//! Workspace-wide structured observability, pure `std`:
//!
//! * **Spans** — hierarchical wall-time regions with item-throughput
//!   attribution (`obs::span!("render_days", days = n)`); a span knows
//!   its parent (per-thread stack), its wall time, and how many items
//!   it processed, so a profiler can print `days/s` per stage.
//! * **Events** — leveled, structured key/value records
//!   (`obs::event!(Level::Warn, "rdap_rejected", budget = b)`).
//! * **Subscribers** — pluggable sinks ([`StderrSubscriber`] for
//!   humans, [`JsonlSubscriber`] for machines, [`MemorySubscriber`]
//!   for tests, [`ProfileCollector`] for `repro profile`). Installed
//!   via [`subscribe`], removed when the returned guard drops.
//! * **Metrics** — a process-wide registry of named counters, gauges
//!   and fixed-bucket histograms ([`metrics`]), always on and
//!   lock-free, rendered by the serving layer's `/metrics` endpoint.
//! * **Flight recorder** — a fixed-capacity ring ([`flight`]) that is
//!   always recording span closes and events (no subscriber needed),
//!   snapshotable as trace-check-compatible JSONL after the fact.
//!
//! ## The disabled path stays off the hot path
//!
//! Tracing is off unless at least one subscriber is installed. The
//! `span!`/`event!` macros expand to `if obs::enabled() { … }`, and
//! [`enabled`] is a single `Relaxed` atomic load — no allocation and
//! no field evaluation while nobody is listening. The flight recorder
//! still sees the history: a disabled `span!` returns a *lite* span
//! (name + start time only — no subscriber dispatch, no span stack)
//! whose drop writes one fixed-size record into the
//! ring, and a disabled `event!` records its static message and level
//! without touching the fields. The metrics registry is separate and
//! intentionally always on (its hot path is one `fetch_add`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flight;
pub mod metrics;
pub mod profile;
pub mod subscriber;

pub use profile::ProfileCollector;
pub use subscriber::{JsonlSubscriber, MemorySubscriber, StderrSubscriber, Subscriber};

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Event severity. `Error` events fail `repro trace-check`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Something is wrong; a trace containing one fails validation.
    Error,
    /// Unusual but handled (admission rejection, archive fallback).
    Warn,
    /// Normal milestones (archive built, cache miss).
    Info,
    /// High-volume diagnostics (per-fanout worker accounting).
    Debug,
}

impl Level {
    /// Lower-case name, as serialized in JSONL traces.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

/// A structured field value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Text.
    Str(String),
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::U64(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v}"),
        }
    }
}

macro_rules! value_from {
    ($($t:ty => $variant:ident as $conv:ty),* $(,)?) => {
        $(impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::$variant(v as $conv) }
        })*
    };
}
value_from!(u64 => U64 as u64, u32 => U64 as u64, u16 => U64 as u64, usize => U64 as u64,
            i64 => I64 as i64, i32 => I64 as i64, f64 => F64 as f64);

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

/// A span-open notification passed to subscribers.
pub struct SpanOpenRecord<'a> {
    /// Process-unique span id (monotonic).
    pub id: u64,
    /// The id of the span enclosing this one on the same thread.
    pub parent: Option<u64>,
    /// Small process-unique id of the opening thread.
    pub thread: u64,
    /// Microseconds since the process trace epoch.
    pub t_us: u64,
    /// Static span name.
    pub name: &'static str,
    /// Structured fields captured at open.
    pub fields: &'a [(&'static str, Value)],
}

/// A span-close notification passed to subscribers.
pub struct SpanCloseRecord {
    /// The id from the matching [`SpanOpenRecord`].
    pub id: u64,
    /// The thread that opened (and closed) the span.
    pub thread: u64,
    /// Microseconds since the process trace epoch at close.
    pub t_us: u64,
    /// Static span name (repeated for standalone close records).
    pub name: &'static str,
    /// Wall time between open and close.
    pub wall: Duration,
    /// Items attributed via [`Span::add_items`] (0 if none).
    pub items: u64,
}

/// An event notification passed to subscribers.
pub struct EventRecord<'a> {
    /// Severity.
    pub level: Level,
    /// The enclosing span on the emitting thread, if any.
    pub span: Option<u64>,
    /// Small process-unique id of the emitting thread.
    pub thread: u64,
    /// Microseconds since the process trace epoch.
    pub t_us: u64,
    /// Static message/name of the event.
    pub message: &'static str,
    /// Structured fields.
    pub fields: &'a [(&'static str, Value)],
}

// --- global tracing state -------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_SUB_TOKEN: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(0);

/// The installed subscribers, keyed by their guard token.
type SubscriberList = Vec<(u64, Arc<dyn Subscriber>)>;

fn subscribers() -> &'static Mutex<SubscriberList> {
    static SUBS: OnceLock<Mutex<SubscriberList>> = OnceLock::new();
    SUBS.get_or_init(|| Mutex::new(Vec::new()))
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_us() -> u64 {
    epoch().elapsed().as_micros().min(u64::MAX as u128) as u64
}

thread_local! {
    static THREAD_ID: Cell<Option<u64>> = const { Cell::new(None) };
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Small process-unique id of the calling thread (0 for the first
/// thread that traces, 1 for the next, …).
pub fn thread_id() -> u64 {
    THREAD_ID.with(|c| match c.get() {
        Some(id) => id,
        None => {
            let id = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
            c.set(Some(id));
            id
        }
    })
}

/// Whether any subscriber is installed. This is the whole cost of an
/// instrumented call site while tracing is off: one relaxed load.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Removes its subscriber (and possibly disables tracing) on drop.
#[must_use = "dropping the guard immediately uninstalls the subscriber"]
pub struct SubscriberGuard {
    token: u64,
}

/// Install a subscriber; tracing is enabled while at least one is
/// installed. The subscriber is removed when the guard drops.
pub fn subscribe(sub: Arc<dyn Subscriber>) -> SubscriberGuard {
    let token = NEXT_SUB_TOKEN.fetch_add(1, Ordering::Relaxed);
    let mut subs = subscribers().lock().expect("subscriber list poisoned");
    subs.push((token, sub));
    ENABLED.store(true, Ordering::Relaxed);
    SubscriberGuard { token }
}

impl Drop for SubscriberGuard {
    fn drop(&mut self) {
        let mut subs = subscribers().lock().expect("subscriber list poisoned");
        subs.retain(|(t, _)| *t != self.token);
        ENABLED.store(!subs.is_empty(), Ordering::Relaxed);
    }
}

fn dispatch(f: impl Fn(&dyn Subscriber)) {
    // Snapshot under the lock, call outside it: subscribers may take
    // their own locks (JSONL writer) and must not deadlock against
    // subscribe/unsubscribe from other threads.
    let subs: Vec<Arc<dyn Subscriber>> = subscribers()
        .lock()
        .expect("subscriber list poisoned")
        .iter()
        .map(|(_, s)| Arc::clone(s))
        .collect();
    for s in &subs {
        f(&**s);
    }
}

// --- spans ----------------------------------------------------------------

struct SpanInner {
    id: u64,
    name: &'static str,
    thread: u64,
    start: Instant,
    items: Cell<u64>,
}

enum SpanState {
    /// A true no-op ([`Span::disabled`]): nothing is recorded anywhere.
    Off,
    /// Tracing is off but the flight recorder still wants the close:
    /// just a name and a start time, no id yet, no span stack entry.
    Lite {
        name: &'static str,
        start: Instant,
        items: Cell<u64>,
    },
    /// Tracing is on: full subscriber dispatch and stack bookkeeping.
    Full(SpanInner),
}

/// An RAII span guard. Created by the [`span!`] macro; emits a close
/// record (with wall time and item count) to every subscriber on drop,
/// and always writes the close into the [`flight`] ring.
pub struct Span {
    state: SpanState,
}

impl Span {
    /// Open a span. Prefer the [`span!`] macro, which skips the
    /// subscriber path (fields unevaluated) while tracing is disabled.
    pub fn enter(name: &'static str, fields: Vec<(&'static str, Value)>) -> Span {
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let thread = thread_id();
        let parent = SPAN_STACK.with(|s| s.borrow().last().copied());
        SPAN_STACK.with(|s| s.borrow_mut().push(id));
        let record = SpanOpenRecord {
            id,
            parent,
            thread,
            t_us: now_us(),
            name,
            fields: &fields,
        };
        dispatch(|s| s.span_open(&record));
        Span {
            state: SpanState::Full(SpanInner {
                id,
                name,
                thread,
                start: Instant::now(),
                items: Cell::new(0),
            }),
        }
    }

    /// The flight-only span the [`span!`] macro returns while tracing
    /// is off: no subscriber dispatch and no stack entry, but its drop
    /// still records the close (name, wall time, items) in the ring.
    pub fn flight_only(name: &'static str) -> Span {
        Span {
            state: SpanState::Lite {
                name,
                start: Instant::now(),
                items: Cell::new(0),
            },
        }
    }

    /// A true no-op span: nothing recorded, every method free. For
    /// call sites that want to opt out of the flight recorder too.
    pub fn disabled() -> Span {
        Span {
            state: SpanState::Off,
        }
    }

    /// Whether this span dispatches to subscribers (callers use this
    /// to skip computing expensive attribution like item totals).
    pub fn is_enabled(&self) -> bool {
        matches!(self.state, SpanState::Full(_))
    }

    /// Attribute `n` processed items to this span (shown as
    /// items-per-second by the profiler). No-op when disabled.
    pub fn add_items(&self, n: u64) {
        let items = match &self.state {
            SpanState::Off => return,
            SpanState::Lite { items, .. } => items,
            SpanState::Full(inner) => &inner.items,
        };
        items.set(items.get().saturating_add(n));
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        match std::mem::replace(&mut self.state, SpanState::Off) {
            SpanState::Off => {}
            SpanState::Lite { name, start, items } => {
                // The id is allocated at close: lite spans never meet
                // a subscriber, so nothing else needs it earlier, and
                // sharing NEXT_SPAN_ID keeps ids unique across both
                // the trace stream and the flight ring.
                let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
                let wall_us = start.elapsed().as_micros().min(u64::MAX as u128) as u64;
                flight::global().record_span_close(id, name, wall_us, items.get());
            }
            SpanState::Full(inner) => {
                SPAN_STACK.with(|s| {
                    let mut stack = s.borrow_mut();
                    if let Some(pos) = stack.iter().rposition(|&id| id == inner.id) {
                        stack.remove(pos);
                    }
                });
                let wall = inner.start.elapsed();
                let record = SpanCloseRecord {
                    id: inner.id,
                    thread: inner.thread,
                    t_us: now_us(),
                    name: inner.name,
                    wall,
                    items: inner.items.get(),
                };
                dispatch(|s| s.span_close(&record));
                flight::global().record_span_close(
                    inner.id,
                    inner.name,
                    wall.as_micros().min(u64::MAX as u128) as u64,
                    inner.items.get(),
                );
            }
        }
    }
}

/// Emit an event to every subscriber *and* the flight ring. Prefer the
/// [`event!`] macro, which skips this (and field evaluation) entirely
/// while tracing is disabled — the macro's disabled path still records
/// the bare message via [`flight::note`].
pub fn emit_event(level: Level, message: &'static str, fields: Vec<(&'static str, Value)>) {
    // The ring stores fixed-size Copy records: keep the numeric and
    // boolean fields, drop owned strings (a full trace has them).
    let copied: Vec<(&'static str, flight::FlightValue)> = fields
        .iter()
        .filter_map(|(k, v)| {
            let fv = match v {
                Value::U64(x) => flight::FlightValue::U64(*x),
                Value::I64(x) => flight::FlightValue::I64(*x),
                Value::F64(x) => flight::FlightValue::F64(*x),
                Value::Bool(x) => flight::FlightValue::Bool(*x),
                Value::Str(_) => return None,
            };
            Some((*k, fv))
        })
        .collect();
    flight::global().record_event(level, message, &copied);
    dispatch_event_only(level, message, fields);
}

/// Dispatch an event to subscribers without touching the flight ring
/// (the [`flight::emit`] path records there itself, with its richer
/// static-string fields).
pub(crate) fn dispatch_event_only(
    level: Level,
    message: &'static str,
    fields: Vec<(&'static str, Value)>,
) {
    let record = EventRecord {
        level,
        span: SPAN_STACK.with(|s| s.borrow().last().copied()),
        thread: thread_id(),
        t_us: now_us(),
        message,
        fields: &fields,
    };
    dispatch(|s| s.event(&record));
}

/// Wall-clock a closure. Lives here because `obs` (with `serve`) is
/// the only workspace crate allowed to read the clock (lint rule L3);
/// `repro bench` uses it to measure flight-recorder overhead without
/// installing a subscriber that would perturb the measurement.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed())
}

/// Open a hierarchical span: `obs::span!("render_days", days = n)`.
///
/// Returns a [`Span`] guard; bind it (`let _span = …`) so it closes at
/// scope end. Field values are only evaluated when tracing is enabled;
/// while it is off the span is *lite* — its close still lands in the
/// [`flight`] ring, fields unevaluated. The conventional field
/// `unit = "days"` labels the span's items-per-second throughput in
/// profiler output.
#[macro_export]
macro_rules! span {
    ($name:expr $(, $key:ident = $val:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::Span::enter(
                $name,
                vec![$((stringify!($key), $crate::Value::from($val))),*],
            )
        } else {
            $crate::Span::flight_only($name)
        }
    };
}

/// Emit a structured event:
/// `obs::event!(obs::Level::Warn, "rdap_rejected", used = u)`.
/// Field values are only evaluated when tracing is enabled; while it
/// is off, the static message and level still land in the [`flight`]
/// ring (fields unevaluated).
#[macro_export]
macro_rules! event {
    ($level:expr, $msg:expr $(, $key:ident = $val:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::emit_event(
                $level,
                $msg,
                vec![$((stringify!($key), $crate::Value::from($val))),*],
            );
        } else {
            $crate::flight::note($level, $msg);
        }
    };
}

/// Emit a *flight* event: always recorded in the [`flight`] ring with
/// its fields — which must be cheap `Copy` values (integers, bools,
/// `&'static str`) — and also dispatched to subscribers when tracing
/// is on. Use for request access logs and other records that must
/// survive in the ring with structure even when nobody is tracing:
/// `obs::flight_event!(obs::Level::Info, "http_access", status = 200u64)`.
#[macro_export]
macro_rules! flight_event {
    ($level:expr, $msg:expr $(, $key:ident = $val:expr)* $(,)?) => {
        $crate::flight::emit(
            $level,
            $msg,
            &[$((stringify!($key), $crate::flight::FlightValue::from($val))),*],
        )
    };
}

#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    // Subscribers are process-global; tests that install one must not
    // overlap or they would see each other's spans.
    static LOCK: Mutex<()> = Mutex::new(());
    match LOCK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::subscriber::TraceRecord;
    use super::*;

    #[test]
    fn disabled_macros_do_not_evaluate_fields() {
        let _guard = test_lock();
        assert!(!enabled());
        let mut evaluated = false;
        let _span = span!("never", x = {
            evaluated = true;
            1u64
        });
        event!(Level::Info, "never", y = {
            evaluated = true;
            2u64
        });
        assert!(!evaluated, "fields must not be evaluated while disabled");
    }

    #[test]
    fn spans_nest_and_report_items() {
        let _guard = test_lock();
        let mem = Arc::new(MemorySubscriber::default());
        let sub = subscribe(mem.clone());
        {
            let outer = span!("outer", kind = "test");
            outer.add_items(10);
            {
                let inner = span!("inner");
                inner.add_items(5);
                event!(Level::Info, "midpoint", step = 1u64);
            }
        }
        drop(sub);
        assert!(!enabled());
        let records = mem.records();
        let opens: Vec<_> = records
            .iter()
            .filter_map(|r| match r {
                TraceRecord::SpanOpen { id, parent, name, .. } => Some((*id, *parent, name.clone())),
                _ => None,
            })
            .collect();
        assert_eq!(opens.len(), 2);
        assert_eq!(opens[0].2, "outer");
        assert_eq!(opens[1].2, "inner");
        // inner's parent is outer.
        assert_eq!(opens[1].1, Some(opens[0].0));
        let closes: Vec<_> = records
            .iter()
            .filter_map(|r| match r {
                TraceRecord::SpanClose { name, items, .. } => Some((name.clone(), *items)),
                _ => None,
            })
            .collect();
        // Inner closes before outer (LIFO).
        assert_eq!(closes, vec![("inner".to_string(), 5), ("outer".to_string(), 10)]);
        let events: Vec<_> = records
            .iter()
            .filter_map(|r| match r {
                TraceRecord::Event { level, message, span, .. } => {
                    Some((*level, message.clone(), *span))
                }
                _ => None,
            })
            .collect();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].0, Level::Info);
        assert_eq!(events[0].1, "midpoint");
        // The event is attributed to the innermost open span.
        assert_eq!(events[0].2, Some(opens[1].0));
    }

    #[test]
    fn disabled_span_still_lands_in_flight_recorder() {
        let _guard = test_lock();
        assert!(!enabled());
        {
            let s = span!("flight_only_marker_span");
            s.add_items(7);
        }
        let snap = flight::global().snapshot();
        let hit = snap.iter().rev().find_map(|r| match r {
            flight::FlightRecord::SpanClose { name, items, .. }
                if *name == "flight_only_marker_span" =>
            {
                Some(*items)
            }
            _ => None,
        });
        assert_eq!(hit, Some(7), "lite span close must reach the ring");
    }

    #[test]
    fn disabled_event_notes_into_flight_recorder() {
        let _guard = test_lock();
        assert!(!enabled());
        event!(Level::Warn, "flight_note_marker");
        let snap = flight::global().snapshot();
        let hit = snap.iter().rev().any(|r| matches!(
            r,
            flight::FlightRecord::Event { level, message, .. }
                if *message == "flight_note_marker" && *level == Level::Warn
        ));
        assert!(hit, "disabled event! must record message + level to the ring");
    }

    #[test]
    fn flight_event_macro_records_fields_and_dispatches_when_enabled() {
        let _guard = test_lock();
        let mem = Arc::new(MemorySubscriber::default());
        let sub = subscribe(mem.clone());
        flight_event!(Level::Info, "flight_event_marker", id = 42u64, route = "rdap");
        drop(sub);
        let snap = flight::global().snapshot();
        let fields = snap
            .iter()
            .rev()
            .find_map(|r| match r {
                flight::FlightRecord::Event { message, fields, .. }
                    if *message == "flight_event_marker" =>
                {
                    Some(*fields)
                }
                _ => None,
            })
            .expect("flight_event! must always reach the ring");
        let slots = fields.as_slice();
        assert_eq!(slots.len(), 2);
        assert_eq!(slots[0].0, "id");
        assert!(matches!(slots[0].1, flight::FlightValue::U64(42)));
        assert!(matches!(slots[1].1, flight::FlightValue::Str("rdap")));
        // And the installed subscriber saw it too.
        assert!(mem.records().iter().any(
            |r| matches!(r, TraceRecord::Event { message, .. } if message == "flight_event_marker")
        ));
    }

    #[test]
    fn time_reports_wall_clock_and_result() {
        let (value, wall) = time(|| 2 + 2);
        assert_eq!(value, 4);
        assert!(wall.as_nanos() > 0 || wall.is_zero());
    }

    #[test]
    fn guard_drop_disables_tracing() {
        let _guard = test_lock();
        let mem = Arc::new(MemorySubscriber::default());
        let sub = subscribe(mem.clone());
        assert!(enabled());
        let second = subscribe(Arc::new(MemorySubscriber::default()));
        drop(sub);
        assert!(enabled(), "one subscriber still installed");
        drop(second);
        assert!(!enabled());
        event!(Level::Error, "after_uninstall");
        assert!(mem.records().is_empty() || !mem
            .records()
            .iter()
            .any(|r| matches!(r, TraceRecord::Event { message, .. } if message == "after_uninstall")));
    }
}
