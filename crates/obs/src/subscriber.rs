//! Trace sinks: human-readable stderr, machine-readable JSONL, and an
//! in-memory collector for tests.

use crate::{EventRecord, Level, SpanCloseRecord, SpanOpenRecord, Value};
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A trace sink. Install with [`crate::subscribe`]. Callbacks must be
/// cheap and must never panic on weird field contents; they may be
/// called concurrently from any thread.
pub trait Subscriber: Send + Sync {
    /// A span opened.
    fn span_open(&self, record: &SpanOpenRecord<'_>);
    /// A span closed.
    fn span_close(&self, record: &SpanCloseRecord);
    /// An event fired.
    fn event(&self, record: &EventRecord<'_>);
}

fn fmt_fields(fields: &[(&'static str, Value)]) -> String {
    let mut out = String::new();
    for (k, v) in fields {
        out.push(' ');
        out.push_str(k);
        out.push('=');
        out.push_str(&v.to_string());
    }
    out
}

/// Human-readable tracing on stderr (`repro --trace`).
#[derive(Default)]
pub struct StderrSubscriber;

impl Subscriber for StderrSubscriber {
    fn span_open(&self, r: &SpanOpenRecord<'_>) {
        eprintln!("# trace > {} [{}]{}", r.name, r.id, fmt_fields(r.fields));
    }

    fn span_close(&self, r: &SpanCloseRecord) {
        let mut line = format!("# trace < {} [{}] {:.2?}", r.name, r.id, r.wall);
        if r.items > 0 {
            let per_sec = r.items as f64 / r.wall.as_secs_f64().max(f64::MIN_POSITIVE);
            line.push_str(&format!(" items={} ({:.0}/s)", r.items, per_sec));
        }
        eprintln!("{line}");
    }

    fn event(&self, r: &EventRecord<'_>) {
        eprintln!("# trace ! {}: {}{}", r.level.as_str(), r.message, fmt_fields(r.fields));
    }
}

/// Escape a string for inclusion in a JSON string literal. Handles
/// quotes, backslashes, and all control characters (newlines included);
/// non-ASCII is passed through as UTF-8, which JSON permits.
pub(crate) fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

fn json_value(v: &Value, out: &mut String) {
    match v {
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(n) if n.is_finite() => out.push_str(&format!("{n}")),
        // JSON has no NaN/Infinity; degrade to a string.
        Value::F64(n) => {
            out.push('"');
            json_escape(&n.to_string(), out);
            out.push('"');
        }
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Str(s) => {
            out.push('"');
            json_escape(s, out);
            out.push('"');
        }
    }
}

fn json_fields(fields: &[(&'static str, Value)], out: &mut String) {
    out.push('{');
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        json_escape(k, out);
        out.push_str("\":");
        json_value(v, out);
    }
    out.push('}');
}

/// Machine-readable JSONL tracing (`repro --trace=jsonl:PATH`).
///
/// One JSON object per line, three record types:
///
/// ```json
/// {"type":"span_open","id":1,"thread":0,"t_us":12,"name":"render_days","fields":{"days":90}}
/// {"type":"span_close","id":1,"thread":0,"t_us":999,"name":"render_days","wall_us":987,"items":90}
/// {"type":"event","level":"info","thread":0,"t_us":40,"span":1,"message":"…","fields":{}}
/// ```
///
/// `span_open` carries `"parent":<id>` when nested. The schema is
/// validated by `repro trace-check` (every line parses, spans nest and
/// close per thread, no `error` events).
pub struct JsonlSubscriber {
    out: Mutex<Box<dyn Write + Send>>,
}

impl JsonlSubscriber {
    /// Write the trace to a file at `path` (buffered; flushed when the
    /// subscriber drops).
    pub fn create(path: &Path) -> io::Result<JsonlSubscriber> {
        let file = std::fs::File::create(path)?;
        Ok(JsonlSubscriber::to_writer(Box::new(BufWriter::new(file))))
    }

    /// Write the trace to an arbitrary sink (tests use a shared
    /// `Vec<u8>`; see [`shared_buffer`]).
    pub fn to_writer(out: Box<dyn Write + Send>) -> JsonlSubscriber {
        JsonlSubscriber { out: Mutex::new(out) }
    }

    fn write_line(&self, line: &str) {
        let mut out = self.out.lock().expect("jsonl writer poisoned");
        // Trace output is best-effort: a full disk must not take the
        // traced pipeline down with it.
        let _ = writeln!(out, "{line}");
    }
}

impl Drop for JsonlSubscriber {
    fn drop(&mut self) {
        if let Ok(mut out) = self.out.lock() {
            let _ = out.flush();
        }
    }
}

impl Subscriber for JsonlSubscriber {
    fn span_open(&self, r: &SpanOpenRecord<'_>) {
        let mut line = format!("{{\"type\":\"span_open\",\"id\":{}", r.id);
        if let Some(parent) = r.parent {
            line.push_str(&format!(",\"parent\":{parent}"));
        }
        line.push_str(&format!(",\"thread\":{},\"t_us\":{},\"name\":\"", r.thread, r.t_us));
        json_escape(r.name, &mut line);
        line.push_str("\",\"fields\":");
        json_fields(r.fields, &mut line);
        line.push('}');
        self.write_line(&line);
    }

    fn span_close(&self, r: &SpanCloseRecord) {
        let mut line = format!(
            "{{\"type\":\"span_close\",\"id\":{},\"thread\":{},\"t_us\":{},\"name\":\"",
            r.id, r.thread, r.t_us
        );
        json_escape(r.name, &mut line);
        line.push_str(&format!(
            "\",\"wall_us\":{},\"items\":{}}}",
            r.wall.as_micros().min(u64::MAX as u128),
            r.items
        ));
        self.write_line(&line);
    }

    fn event(&self, r: &EventRecord<'_>) {
        let mut line = format!(
            "{{\"type\":\"event\",\"level\":\"{}\",\"thread\":{},\"t_us\":{}",
            r.level.as_str(),
            r.thread,
            r.t_us
        );
        if let Some(span) = r.span {
            line.push_str(&format!(",\"span\":{span}"));
        }
        line.push_str(",\"message\":\"");
        json_escape(r.message, &mut line);
        line.push_str("\",\"fields\":");
        json_fields(r.fields, &mut line);
        line.push('}');
        self.write_line(&line);
    }
}

/// A cloneable in-memory byte sink plus a [`JsonlSubscriber`] writing
/// into it — the test harness for JSONL traces.
pub fn shared_buffer() -> (JsonlSubscriber, Arc<Mutex<Vec<u8>>>) {
    #[derive(Clone)]
    struct BufSink(Arc<Mutex<Vec<u8>>>);
    impl Write for BufSink {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().expect("buffer poisoned").extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }
    let buf = Arc::new(Mutex::new(Vec::new()));
    (JsonlSubscriber::to_writer(Box::new(BufSink(Arc::clone(&buf)))), buf)
}

/// An owned copy of a dispatched record, as stored by
/// [`MemorySubscriber`].
#[derive(Clone, Debug, PartialEq)]
pub enum TraceRecord {
    /// A span opened.
    SpanOpen {
        /// Span id.
        id: u64,
        /// Enclosing span id, if nested.
        parent: Option<u64>,
        /// Opening thread.
        thread: u64,
        /// Span name.
        name: String,
        /// Fields captured at open.
        fields: Vec<(String, Value)>,
    },
    /// A span closed.
    SpanClose {
        /// Span id.
        id: u64,
        /// Span name.
        name: String,
        /// Wall time.
        wall: Duration,
        /// Attributed items.
        items: u64,
    },
    /// An event fired.
    Event {
        /// Severity.
        level: Level,
        /// Enclosing span, if any.
        span: Option<u64>,
        /// Message.
        message: String,
        /// Fields.
        fields: Vec<(String, Value)>,
    },
}

/// Collects every record in memory — the assertion surface for tests.
#[derive(Default)]
pub struct MemorySubscriber {
    records: Mutex<Vec<TraceRecord>>,
}

impl MemorySubscriber {
    /// A copy of everything recorded so far, in dispatch order.
    pub fn records(&self) -> Vec<TraceRecord> {
        self.records.lock().expect("memory subscriber poisoned").clone()
    }

    /// The names of all closed spans, in close order.
    pub fn closed_span_names(&self) -> Vec<String> {
        self.records()
            .into_iter()
            .filter_map(|r| match r {
                TraceRecord::SpanClose { name, .. } => Some(name),
                _ => None,
            })
            .collect()
    }
}

fn own_fields(fields: &[(&'static str, Value)]) -> Vec<(String, Value)> {
    fields.iter().map(|(k, v)| (k.to_string(), v.clone())).collect()
}

impl Subscriber for MemorySubscriber {
    fn span_open(&self, r: &SpanOpenRecord<'_>) {
        self.records.lock().expect("memory subscriber poisoned").push(TraceRecord::SpanOpen {
            id: r.id,
            parent: r.parent,
            thread: r.thread,
            name: r.name.to_string(),
            fields: own_fields(r.fields),
        });
    }

    fn span_close(&self, r: &SpanCloseRecord) {
        self.records.lock().expect("memory subscriber poisoned").push(TraceRecord::SpanClose {
            id: r.id,
            name: r.name.to_string(),
            wall: r.wall,
            items: r.items,
        });
    }

    fn event(&self, r: &EventRecord<'_>) {
        self.records.lock().expect("memory subscriber poisoned").push(TraceRecord::Event {
            level: r.level,
            span: r.span,
            message: r.message.to_string(),
            fields: own_fields(r.fields),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{event, span, subscribe, test_lock};

    /// Satellite requirement: JSONL escaping survives keys/values with
    /// quotes, newlines, and non-ASCII — every emitted line must parse
    /// as JSON and round-trip the value.
    #[test]
    fn jsonl_escaping_round_trips_hostile_strings() {
        let _guard = test_lock();
        let (jsonl, buf) = shared_buffer();
        let sub = subscribe(std::sync::Arc::new(jsonl));
        let hostile = "he said \"hi\"\nthen\tleft \\ fin — völlig 日本語 \u{1}";
        {
            let span = span!("weird \"span\"\nname", note = hostile);
            span.add_items(3);
            event!(Level::Warn, "line\r\nbreaks", payload = hostile, ok = true);
        }
        drop(sub);
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "{text}");
        for line in &lines {
            let v = serde_json::parse(line).unwrap_or_else(|e| panic!("bad JSON {line:?}: {e:?}"));
            assert!(v.get("type").is_some());
        }
        let open = serde_json::parse(lines[0]).unwrap();
        assert_eq!(open["name"].as_str(), Some("weird \"span\"\nname"));
        assert_eq!(open["fields"]["note"].as_str(), Some(hostile));
        let event = serde_json::parse(lines[1]).unwrap();
        assert_eq!(event["message"].as_str(), Some("line\r\nbreaks"));
        assert_eq!(event["fields"]["payload"].as_str(), Some(hostile));
        assert_eq!(event["fields"]["ok"].as_bool(), Some(true));
        let close = serde_json::parse(lines[2]).unwrap();
        assert_eq!(close["items"].as_i64(), Some(3));
        assert!(close["wall_us"].as_i64().is_some());
    }

    #[test]
    fn jsonl_non_finite_floats_degrade_to_strings() {
        let mut out = String::new();
        json_value(&Value::F64(f64::NAN), &mut out);
        assert_eq!(out, "\"NaN\"");
        let mut out = String::new();
        json_value(&Value::F64(1.5), &mut out);
        assert_eq!(out, "1.5");
    }

    #[test]
    fn memory_subscriber_records_in_order() {
        let _guard = test_lock();
        let mem = std::sync::Arc::new(MemorySubscriber::default());
        let sub = subscribe(mem.clone());
        {
            let _a = span!("a");
            let _b = span!("b");
        }
        drop(sub);
        assert_eq!(mem.closed_span_names(), vec!["b", "a"]);
    }
}
