//! The pipeline profiler behind `repro profile <experiment>`.
//!
//! [`ProfileCollector`] is a subscriber that retains every closed span
//! (with its parent link, wall time, and item count) and renders the
//! run as an indented tree: one line per stage with wall time, item
//! count, and throughput. A span's conventional `unit = "days"` field
//! labels its items-per-second figure (`5143 days/s`); spans without
//! items print wall time only.

use crate::subscriber::Subscriber;
use crate::{EventRecord, Level, SpanCloseRecord, SpanOpenRecord, Value};
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Duration;

struct SpanNode {
    id: u64,
    parent: Option<u64>,
    name: String,
    unit: Option<String>,
    fields: Vec<(String, Value)>,
    wall: Option<Duration>,
    items: u64,
}

#[derive(Default)]
struct State {
    // Open order — also the render order within each parent.
    spans: Vec<SpanNode>,
    index: HashMap<u64, usize>,
    // Warn/error events, surfaced under the tree.
    notes: Vec<String>,
}

/// Collects spans for a profile report. Install with
/// [`crate::subscribe`], run the workload, then call [`render_tree`]
/// (after dropping the guard so every span has closed).
///
/// [`render_tree`]: ProfileCollector::render_tree
#[derive(Default)]
pub struct ProfileCollector {
    state: Mutex<State>,
}

fn fmt_duration(d: Duration) -> String {
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        format!("{:.1}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2}s", d.as_secs_f64())
    }
}

fn fmt_rate(items: u64, wall: Duration, unit: &str) -> String {
    let secs = wall.as_secs_f64();
    if secs <= 0.0 {
        return format!("{items} {unit}");
    }
    let rate = items as f64 / secs;
    if rate >= 10.0 {
        format!("{items} {unit}, {rate:.0} {unit}/s")
    } else {
        format!("{items} {unit}, {rate:.2} {unit}/s")
    }
}

impl ProfileCollector {
    /// An empty collector.
    pub fn new() -> ProfileCollector {
        ProfileCollector::default()
    }

    /// Render the collected spans as an indented tree, root spans in
    /// open order, one line per span: name, wall time, and — when the
    /// span attributed items — count and throughput. Collected
    /// warn/error events follow the tree.
    pub fn render_tree(&self) -> String {
        let state = self.state.lock().expect("profile collector poisoned");
        // children[i] = indices of spans whose parent is spans[i].
        let mut roots: Vec<usize> = Vec::new();
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); state.spans.len()];
        for (i, node) in state.spans.iter().enumerate() {
            match node.parent.and_then(|p| state.index.get(&p)) {
                Some(&pi) => children[pi].push(i),
                None => roots.push(i),
            }
        }
        let mut out = String::new();
        for &root in &roots {
            render_node(&state.spans, &children, root, "", "", &mut out);
        }
        if !state.notes.is_empty() {
            out.push('\n');
            for note in &state.notes {
                out.push_str(note);
                out.push('\n');
            }
        }
        out
    }

    /// Total wall time of root spans (the profiled run's span-covered
    /// duration).
    pub fn total_wall(&self) -> Duration {
        let state = self.state.lock().expect("profile collector poisoned");
        state
            .spans
            .iter()
            .filter(|n| n.parent.is_none())
            .filter_map(|n| n.wall)
            .sum()
    }

    /// Total wall time over every closed span with the given name.
    ///
    /// Stage harnesses (`repro bench`) wrap each pipeline stage in a
    /// uniquely-named span and read its duration back through this
    /// accessor, keeping all wall-clock reads inside `obs`. Returns
    /// `None` when no span of that name closed.
    pub fn stage_wall(&self, name: &str) -> Option<Duration> {
        let state = self.state.lock().expect("profile collector poisoned");
        let mut total = Duration::ZERO;
        let mut seen = false;
        for node in &state.spans {
            if node.name == name {
                if let Some(wall) = node.wall {
                    total += wall;
                    seen = true;
                }
            }
        }
        seen.then_some(total)
    }

    /// Names of all closed spans, in open order.
    pub fn span_names(&self) -> Vec<String> {
        let state = self.state.lock().expect("profile collector poisoned");
        state
            .spans
            .iter()
            .filter(|n| n.wall.is_some())
            .map(|n| n.name.clone())
            .collect()
    }
}

fn render_node(
    spans: &[SpanNode],
    children: &[Vec<usize>],
    i: usize,
    prefix: &str,
    child_prefix: &str,
    out: &mut String,
) {
    let node = &spans[i];
    let label = format!("{prefix}{}", node.name);
    out.push_str(&format!("{label:<42}"));
    match node.wall {
        Some(wall) => {
            out.push_str(&format!("{:>10}", fmt_duration(wall)));
            if node.items > 0 {
                let unit = node.unit.as_deref().unwrap_or("items");
                out.push_str("  ");
                out.push_str(&fmt_rate(node.items, wall, unit));
            }
        }
        None => out.push_str("   (never closed)"),
    }
    for (k, v) in &node.fields {
        if k != "unit" {
            out.push_str(&format!("  {k}={v}"));
        }
    }
    out.push('\n');
    let kids = &children[i];
    for (n, &child) in kids.iter().enumerate() {
        let last = n + 1 == kids.len();
        let branch = if last { "└─ " } else { "├─ " };
        let cont = if last { "   " } else { "│  " };
        render_node(
            spans,
            children,
            child,
            &format!("{child_prefix}{branch}"),
            &format!("{child_prefix}{cont}"),
            out,
        );
    }
}

impl Subscriber for ProfileCollector {
    fn span_open(&self, r: &SpanOpenRecord<'_>) {
        let mut state = self.state.lock().expect("profile collector poisoned");
        let unit = r.fields.iter().find_map(|(k, v)| match (k, v) {
            (&"unit", Value::Str(s)) => Some(s.clone()),
            _ => None,
        });
        let idx = state.spans.len();
        state.spans.push(SpanNode {
            id: r.id,
            parent: r.parent,
            name: r.name.to_string(),
            unit,
            fields: r.fields.iter().map(|(k, v)| (k.to_string(), v.clone())).collect(),
            wall: None,
            items: 0,
        });
        state.index.insert(r.id, idx);
    }

    fn span_close(&self, r: &SpanCloseRecord) {
        let mut state = self.state.lock().expect("profile collector poisoned");
        if let Some(&idx) = state.index.get(&r.id) {
            let node = &mut state.spans[idx];
            debug_assert_eq!(node.id, r.id);
            node.wall = Some(r.wall);
            node.items = r.items;
        }
    }

    fn event(&self, r: &EventRecord<'_>) {
        if r.level > Level::Warn {
            return;
        }
        let mut fields = String::new();
        for (k, v) in r.fields {
            fields.push_str(&format!(" {k}={v}"));
        }
        let note = format!("[{}] {}{}", r.level.as_str(), r.message, fields);
        self.state.lock().expect("profile collector poisoned").notes.push(note);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{event, span, subscribe, test_lock};
    use std::sync::Arc;

    #[test]
    fn profile_tree_nests_and_reports_throughput() {
        let _guard = test_lock();
        let collector = Arc::new(ProfileCollector::new());
        let sub = subscribe(collector.clone());
        {
            let outer = span!("chain", unit = "days");
            outer.add_items(90);
            {
                let _a = span!("stage_a");
            }
            {
                let _b = span!("stage_b");
            }
            event!(Level::Warn, "fallback_used", kind = "synthetic");
            event!(Level::Debug, "noise");
        }
        drop(sub);
        let tree = collector.render_tree();
        let lines: Vec<&str> = tree.lines().collect();
        assert!(lines[0].starts_with("chain"), "{tree}");
        assert!(lines[0].contains("90 days"), "{tree}");
        assert!(lines[0].contains("days/s"), "{tree}");
        // stage_a opened first, so it renders first; both are children.
        assert!(lines[1].contains("├─ stage_a"), "{tree}");
        assert!(lines[2].contains("└─ stage_b"), "{tree}");
        // Warn surfaced, debug suppressed.
        assert!(tree.contains("[warn] fallback_used kind=synthetic"), "{tree}");
        assert!(!tree.contains("noise"), "{tree}");
        assert_eq!(
            collector.span_names(),
            vec!["chain".to_string(), "stage_a".to_string(), "stage_b".to_string()]
        );
        assert!(collector.total_wall() > Duration::ZERO);
    }

    #[test]
    fn unclosed_spans_are_flagged() {
        let collector = ProfileCollector::new();
        collector.span_open(&SpanOpenRecord {
            id: 7,
            parent: None,
            thread: 0,
            t_us: 0,
            name: "stuck",
            fields: &[],
        });
        let tree = collector.render_tree();
        assert!(tree.contains("stuck"), "{tree}");
        assert!(tree.contains("(never closed)"), "{tree}");
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(fmt_duration(Duration::from_micros(250)), "250µs");
        assert_eq!(fmt_duration(Duration::from_micros(1_500)), "1.5ms");
        assert_eq!(fmt_duration(Duration::from_millis(2_500)), "2.50s");
    }
}
