//! The flight recorder: a fixed-capacity ring buffer that is **always
//! recording** — no subscriber needed — so the recent history of span
//! closes and events is available *after the fact* when a request
//! misbehaves in production.
//!
//! Unlike tracing (off unless subscribed) and like metrics, the
//! recorder is compiled in and always on. Writers claim a slot with
//! one atomic `fetch_add` on the write cursor; the slots are sharded —
//! each holds its own tiny lock guarding only the single record copy,
//! so concurrent writers touch disjoint slots and never contend on a
//! global lock. Records are fixed-size `Copy` values (static strings
//! and integers only, no allocation), which is what keeps the hot path
//! to roughly a timestamp read plus two atomic operations.
//!
//! A snapshot renders the ring (oldest first) as JSONL that passes
//! `repro trace-check`: each captured span close is emitted as a
//! matched, parentless `span_open`/`span_close` pair on its recording
//! thread — the ring only keeps closes, so the opens are synthesized
//! from `t_us - wall_us` — and events carry no `span` reference.

use crate::subscriber::json_escape;
use crate::Level;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Fields kept per flight event. Access logs need four (request id,
/// route, status, latency); anything larger belongs in a real trace.
pub const MAX_FIELDS: usize = 4;

/// Slots in the process-global ring: enough for the recent history of
/// a busy server (a few seconds at thousands of requests/sec) while
/// staying a fraction of a megabyte resident.
pub const DEFAULT_CAPACITY: usize = 4096;

/// A `Copy` field value: static strings and numbers only, so recording
/// never allocates.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FlightValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Static text (route names, labels).
    Str(&'static str),
}

macro_rules! flight_value_from {
    ($($t:ty => $variant:ident as $conv:ty),* $(,)?) => {
        $(impl From<$t> for FlightValue {
            fn from(v: $t) -> FlightValue { FlightValue::$variant(v as $conv) }
        })*
    };
}
flight_value_from!(u64 => U64 as u64, u32 => U64 as u64, u16 => U64 as u64,
                   usize => U64 as u64, i64 => I64 as i64, i32 => I64 as i64,
                   f64 => F64 as f64);

impl From<bool> for FlightValue {
    fn from(v: bool) -> FlightValue {
        FlightValue::Bool(v)
    }
}
impl From<&'static str> for FlightValue {
    fn from(v: &'static str) -> FlightValue {
        FlightValue::Str(v)
    }
}

/// A fixed-size, `Copy` bag of up to [`MAX_FIELDS`] fields.
#[derive(Clone, Copy, Debug)]
pub struct FieldBuf {
    len: usize,
    slots: [(&'static str, FlightValue); MAX_FIELDS],
}

impl Default for FieldBuf {
    fn default() -> FieldBuf {
        FieldBuf {
            len: 0,
            slots: [("", FlightValue::U64(0)); MAX_FIELDS],
        }
    }
}

impl FieldBuf {
    /// Copy `fields` in, silently truncating past [`MAX_FIELDS`].
    pub fn from_slice(fields: &[(&'static str, FlightValue)]) -> FieldBuf {
        let mut buf = FieldBuf::default();
        for &f in fields.iter().take(MAX_FIELDS) {
            buf.slots[buf.len] = f;
            buf.len += 1;
        }
        buf
    }

    /// The populated fields.
    pub fn as_slice(&self) -> &[(&'static str, FlightValue)] {
        &self.slots[..self.len]
    }
}

/// One fixed-size ring entry.
#[derive(Clone, Copy, Debug)]
pub enum FlightRecord {
    /// A span that closed (open records are not kept: the close knows
    /// its name, wall time and items, which is the useful history).
    SpanClose {
        /// Process-unique span id (shared with the trace stream).
        id: u64,
        /// Small process-unique id of the closing thread.
        thread: u64,
        /// Microseconds since the process trace epoch at close.
        t_us: u64,
        /// Wall time between open and close, µs.
        wall_us: u64,
        /// Items attributed to the span (0 if none).
        items: u64,
        /// Static span name.
        name: &'static str,
    },
    /// An event.
    Event {
        /// Severity.
        level: Level,
        /// Small process-unique id of the emitting thread.
        thread: u64,
        /// Microseconds since the process trace epoch.
        t_us: u64,
        /// Static message.
        message: &'static str,
        /// Up to [`MAX_FIELDS`] structured fields.
        fields: FieldBuf,
    },
}

/// The always-on ring buffer. One process-global instance lives behind
/// [`global`]; tests construct their own with [`FlightRecorder::with_capacity`].
pub struct FlightRecorder {
    /// Sharded slots: each guards exactly one record copy, so writers
    /// on different slots never touch the same lock.
    slots: Box<[Mutex<Option<FlightRecord>>]>,
    /// Total records ever written; `cursor % capacity` is the next slot.
    cursor: AtomicU64,
    /// Bench-only escape hatch: `obs_overhead` compares a paused run
    /// against an active one. Production never pauses.
    paused: AtomicBool,
}

impl FlightRecorder {
    /// A recorder holding the most recent `capacity` records (min 1).
    pub fn with_capacity(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicU64::new(0),
            paused: AtomicBool::new(false),
        }
    }

    /// Slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Records ever written (not capped at capacity).
    pub fn recorded_total(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Pause or resume recording. Exists so the `obs_overhead` bench
    /// stage can measure a baseline; everything else leaves this alone.
    pub fn set_paused(&self, paused: bool) {
        self.paused.store(paused, Ordering::Relaxed);
    }

    /// Whether recording is paused (bench only).
    pub fn is_paused(&self) -> bool {
        self.paused.load(Ordering::Relaxed)
    }

    /// Write one record: claim a slot via the cursor, copy under that
    /// slot's own lock. A snapshot reading the same slot waits only
    /// for this single copy.
    pub fn record(&self, record: FlightRecord) {
        if self.paused.load(Ordering::Relaxed) {
            return;
        }
        let at = self.cursor.fetch_add(1, Ordering::Relaxed);
        let idx = (at % self.slots.len() as u64) as usize;
        // A poisoned slot (panic mid-copy is impossible, but a
        // panicking test thread may hold it) still has a coherent
        // Option; recover rather than propagate.
        let mut slot = self.slots[idx].lock().unwrap_or_else(|p| p.into_inner());
        *slot = Some(record);
    }

    /// Record a span close.
    pub fn record_span_close(&self, id: u64, name: &'static str, wall_us: u64, items: u64) {
        self.record(FlightRecord::SpanClose {
            id,
            thread: crate::thread_id(),
            t_us: crate::now_us(),
            wall_us,
            items,
            name,
        });
    }

    /// Record an event with up to [`MAX_FIELDS`] fields.
    pub fn record_event(
        &self,
        level: Level,
        message: &'static str,
        fields: &[(&'static str, FlightValue)],
    ) {
        self.record(FlightRecord::Event {
            level,
            thread: crate::thread_id(),
            t_us: crate::now_us(),
            message,
            fields: FieldBuf::from_slice(fields),
        });
    }

    /// Copy the ring out, oldest first. Writers racing the snapshot
    /// may replace a slot between reads; every record returned is a
    /// complete copy (the per-slot lock covers the whole record).
    pub fn snapshot(&self) -> Vec<FlightRecord> {
        let cap = self.slots.len() as u64;
        let cursor = self.cursor.load(Ordering::Relaxed);
        let start = cursor % cap; // the oldest surviving slot
        let mut out = Vec::new();
        for k in 0..cap {
            let idx = ((start + k) % cap) as usize;
            let slot = self.slots[idx].lock().unwrap_or_else(|p| p.into_inner());
            if let Some(record) = *slot {
                out.push(record);
            }
        }
        out
    }

    /// Render the ring as `repro trace-check`-compatible JSONL: every
    /// captured span close becomes a matched, parentless
    /// `span_open`/`span_close` pair (the open's `t_us` reconstructed
    /// as `close - wall`), events carry no `span` reference, so spans
    /// trivially nest LIFO per thread and all close by end of dump.
    pub fn snapshot_jsonl(&self) -> String {
        let mut out = String::new();
        for record in self.snapshot() {
            match record {
                FlightRecord::SpanClose {
                    id,
                    thread,
                    t_us,
                    wall_us,
                    items,
                    name,
                } => {
                    let open_t = t_us.saturating_sub(wall_us);
                    out.push_str(&format!(
                        "{{\"type\":\"span_open\",\"id\":{id},\"thread\":{thread},\
                         \"t_us\":{open_t},\"name\":\""
                    ));
                    json_escape(name, &mut out);
                    out.push_str("\",\"fields\":{}}\n");
                    out.push_str(&format!(
                        "{{\"type\":\"span_close\",\"id\":{id},\"thread\":{thread},\
                         \"t_us\":{t_us},\"name\":\""
                    ));
                    json_escape(name, &mut out);
                    out.push_str(&format!("\",\"wall_us\":{wall_us},\"items\":{items}}}\n"));
                }
                FlightRecord::Event {
                    level,
                    thread,
                    t_us,
                    message,
                    fields,
                } => {
                    out.push_str(&format!(
                        "{{\"type\":\"event\",\"level\":\"{}\",\"thread\":{thread},\
                         \"t_us\":{t_us},\"message\":\"",
                        level.as_str()
                    ));
                    json_escape(message, &mut out);
                    out.push_str("\",\"fields\":{");
                    for (i, (key, value)) in fields.as_slice().iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        out.push('"');
                        json_escape(key, &mut out);
                        out.push_str("\":");
                        match value {
                            FlightValue::U64(v) => out.push_str(&v.to_string()),
                            FlightValue::I64(v) => out.push_str(&v.to_string()),
                            FlightValue::F64(v) => out.push_str(&v.to_string()),
                            FlightValue::Bool(v) => out.push_str(&v.to_string()),
                            FlightValue::Str(s) => {
                                out.push('"');
                                json_escape(s, &mut out);
                                out.push('"');
                            }
                        }
                    }
                    out.push_str("}}\n");
                }
            }
        }
        out
    }
}

/// The process-global recorder every span close and event lands in.
pub fn global() -> &'static FlightRecorder {
    static GLOBAL: OnceLock<FlightRecorder> = OnceLock::new();
    GLOBAL.get_or_init(|| FlightRecorder::with_capacity(DEFAULT_CAPACITY))
}

/// Record a bare event (message and level only) into the global ring.
/// The `event!` macro calls this on its disabled path so the recorder
/// sees every event without evaluating the call site's fields.
pub fn note(level: Level, message: &'static str) {
    global().record_event(level, message, &[]);
}

/// Emit a *flight* event: always recorded in the global ring (with its
/// fields — they must be cheap `Copy` values), and also dispatched to
/// subscribers when tracing is on. This is the [`crate::flight_event!`]
/// macro's backend; access logs use it so the ring holds structure
/// even when nobody is tracing.
pub fn emit(level: Level, message: &'static str, fields: &[(&'static str, FlightValue)]) {
    global().record_event(level, message, fields);
    if crate::enabled() {
        let values: Vec<(&'static str, crate::Value)> = fields
            .iter()
            .map(|&(k, v)| {
                let value = match v {
                    FlightValue::U64(x) => crate::Value::U64(x),
                    FlightValue::I64(x) => crate::Value::I64(x),
                    FlightValue::F64(x) => crate::Value::F64(x),
                    FlightValue::Bool(x) => crate::Value::Bool(x),
                    FlightValue::Str(s) => crate::Value::Str(s.to_string()),
                };
                (k, value)
            })
            .collect();
        crate::dispatch_event_only(level, message, values);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(id: u64, t_us: u64) -> FlightRecord {
        FlightRecord::SpanClose {
            id,
            thread: 0,
            t_us,
            wall_us: 5,
            items: id,
            name: "stage",
        }
    }

    #[test]
    fn ring_wraps_at_capacity_keeping_newest() {
        let ring = FlightRecorder::with_capacity(8);
        for i in 0..20u64 {
            ring.record(close(i, 100 + i));
        }
        assert_eq!(ring.recorded_total(), 20);
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 8, "ring keeps exactly capacity records");
        let ids: Vec<u64> = snap
            .iter()
            .map(|r| match r {
                FlightRecord::SpanClose { id, .. } => *id,
                FlightRecord::Event { .. } => unreachable!(),
            })
            .collect();
        assert_eq!(ids, (12..20).collect::<Vec<u64>>(), "oldest first, newest kept");
    }

    #[test]
    fn snapshot_of_partial_ring_returns_only_written_slots() {
        let ring = FlightRecorder::with_capacity(16);
        ring.record(close(1, 10));
        ring.record(close(2, 11));
        assert_eq!(ring.snapshot().len(), 2);
    }

    #[test]
    fn paused_recorder_drops_records() {
        let ring = FlightRecorder::with_capacity(4);
        ring.record(close(1, 10));
        ring.set_paused(true);
        assert!(ring.is_paused());
        ring.record(close(2, 11));
        ring.set_paused(false);
        ring.record(close(3, 12));
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 2, "the paused record is gone");
    }

    #[test]
    fn jsonl_pairs_pass_trace_semantics_by_construction() {
        let ring = FlightRecorder::with_capacity(8);
        ring.record(close(7, 100));
        ring.record(FlightRecord::Event {
            level: Level::Info,
            thread: 3,
            t_us: 101,
            message: "hit \"quoted\"",
            fields: FieldBuf::from_slice(&[
                ("route", FlightValue::Str("rdap")),
                ("status", FlightValue::U64(200)),
            ]),
        });
        let jsonl = ring.snapshot_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3, "{jsonl}");
        assert!(lines[0].contains("\"type\":\"span_open\"") && lines[0].contains("\"id\":7"));
        assert!(lines[0].contains("\"t_us\":95"), "open at close - wall: {}", lines[0]);
        assert!(lines[1].contains("\"type\":\"span_close\"") && lines[1].contains("\"wall_us\":5"));
        assert!(lines[2].contains("\"message\":\"hit \\\"quoted\\\"\""), "{}", lines[2]);
        assert!(lines[2].contains("\"route\":\"rdap\"") && lines[2].contains("\"status\":200"));
        // Every line is valid JSON per the shim parser.
        for line in &lines {
            serde_json::parse(line).expect("snapshot line parses");
        }
    }

    #[test]
    fn field_buf_truncates_past_max() {
        let many: Vec<(&'static str, FlightValue)> =
            vec![("a", FlightValue::U64(1)); MAX_FIELDS + 3];
        let buf = FieldBuf::from_slice(&many);
        assert_eq!(buf.as_slice().len(), MAX_FIELDS);
    }

    #[test]
    fn snapshot_while_writing_yields_complete_records() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let ring = FlightRecorder::with_capacity(32);
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            for w in 0..4u64 {
                let ring = &ring;
                let stop = &stop;
                s.spawn(move || {
                    let mut i = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        ring.record(close(w * 1_000_000 + i, i));
                        i += 1;
                    }
                });
            }
            for _ in 0..50 {
                let jsonl = ring.snapshot_jsonl();
                for line in jsonl.lines() {
                    serde_json::parse(line).expect("mid-write snapshot line parses");
                }
                // Pairs stay adjacent: opens and closes alternate.
                let kinds: Vec<bool> = jsonl
                    .lines()
                    .map(|l| l.contains("\"type\":\"span_open\""))
                    .collect();
                for pair in kinds.chunks(2) {
                    assert_eq!(pair, [true, false], "open/close pairs stay adjacent");
                }
            }
            stop.store(true, Ordering::Relaxed);
        });
    }
}
