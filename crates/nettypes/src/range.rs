//! Inclusive IPv4 address ranges as used by WHOIS `inetnum` objects.
//!
//! RIPE's database keys `inetnum` objects by `start - end` ranges which
//! need not align to CIDR boundaries. This module provides lossless
//! conversion between ranges and their minimal CIDR cover.

use crate::error::NetTypesError;
use crate::prefix::Prefix;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// An inclusive range `start..=end` of IPv4 addresses.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct IpRange {
    start: u32,
    end: u32,
}

impl IpRange {
    /// Create a range; rejects `start > end`.
    pub fn new(start: u32, end: u32) -> Result<Self, NetTypesError> {
        if start > end {
            return Err(NetTypesError::InvalidRange { start, end });
        }
        Ok(IpRange { start, end })
    }

    /// First address of the range.
    #[inline]
    pub fn start(&self) -> u32 {
        self.start
    }

    /// Last address of the range (inclusive).
    #[inline]
    pub fn end(&self) -> u32 {
        self.end
    }

    /// Number of addresses covered.
    #[inline]
    pub fn num_addresses(&self) -> u64 {
        (self.end - self.start) as u64 + 1
    }

    /// True if `addr` is inside the range.
    #[inline]
    pub fn contains_address(&self, addr: u32) -> bool {
        addr >= self.start && addr <= self.end
    }

    /// True if `other` is fully contained in `self`.
    #[inline]
    pub fn contains_range(&self, other: &IpRange) -> bool {
        other.start >= self.start && other.end <= self.end
    }

    /// True if the two ranges share any address.
    #[inline]
    pub fn overlaps(&self, other: &IpRange) -> bool {
        self.start <= other.end && other.start <= self.end
    }

    /// The range covered by a single prefix.
    pub fn from_prefix(p: Prefix) -> Self {
        IpRange {
            start: p.network(),
            end: p.last_address(),
        }
    }

    /// If the range is exactly one CIDR block, return that prefix.
    pub fn as_single_prefix(&self) -> Option<Prefix> {
        let span = self.num_addresses();
        if !span.is_power_of_two() {
            return None;
        }
        let len = 32 - span.trailing_zeros() as u8;
        let p = Prefix::new(self.start, len).ok()?;
        if p.last_address() == self.end {
            Some(p)
        } else {
            None
        }
    }

    /// The minimal list of CIDR prefixes that exactly covers the range,
    /// in ascending address order (the classic range-to-CIDR algorithm).
    pub fn to_cidrs(&self) -> Vec<Prefix> {
        let mut out = Vec::new();
        let mut cur = self.start as u64;
        let end = self.end as u64;
        while cur <= end {
            // Largest block size allowed by alignment of `cur`…
            let align = if cur == 0 { 32 } else { cur.trailing_zeros().min(32) };
            // …and by the remaining span.
            let remaining = end - cur + 1;
            let span_bits = 63 - remaining.leading_zeros(); // floor(log2(remaining))
            let bits = align.min(span_bits);
            let len = 32 - bits as u8;
            out.push(Prefix::new_unchecked_masked(cur as u32, len));
            cur += 1u64 << bits;
        }
        out
    }

    /// Intersect two ranges, if they overlap.
    pub fn intersection(&self, other: &IpRange) -> Option<IpRange> {
        if !self.overlaps(other) {
            return None;
        }
        Some(IpRange {
            start: self.start.max(other.start),
            end: self.end.min(other.end),
        })
    }

    /// Merge two overlapping or adjacent ranges into one.
    pub fn union_if_contiguous(&self, other: &IpRange) -> Option<IpRange> {
        let adjacent = self.end != u32::MAX && self.end + 1 == other.start
            || other.end != u32::MAX && other.end + 1 == self.start;
        if self.overlaps(other) || adjacent {
            Some(IpRange {
                start: self.start.min(other.start),
                end: self.end.max(other.end),
            })
        } else {
            None
        }
    }
}

impl fmt::Display for IpRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} - {}",
            crate::fmt_ipv4(self.start),
            crate::fmt_ipv4(self.end)
        )
    }
}

impl fmt::Debug for IpRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IpRange({self})")
    }
}

impl FromStr for IpRange {
    type Err = NetTypesError;

    /// Parse the WHOIS `inetnum` notation `a.b.c.d - e.f.g.h`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (a, b) = s
            .split_once('-')
            .ok_or(NetTypesError::InvalidRange { start: 0, end: 0 })?;
        IpRange::new(crate::parse_ipv4(a.trim())?, crate::parse_ipv4(b.trim())?)
    }
}

impl From<Prefix> for IpRange {
    fn from(p: Prefix) -> Self {
        IpRange::from_prefix(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefix::pfx;
    use proptest::prelude::*;

    #[test]
    fn rejects_inverted() {
        assert!(IpRange::new(5, 4).is_err());
        assert!(IpRange::new(5, 5).is_ok());
    }

    #[test]
    fn parses_whois_notation() {
        let r: IpRange = "193.0.0.0 - 193.0.7.255".parse().unwrap();
        assert_eq!(r.as_single_prefix().unwrap(), pfx("193.0.0.0/21"));
        assert_eq!(r.to_string(), "193.0.0.0 - 193.0.7.255");
    }

    #[test]
    fn single_prefix_detection() {
        assert_eq!(
            IpRange::from_prefix(pfx("10.0.0.0/8")).as_single_prefix(),
            Some(pfx("10.0.0.0/8"))
        );
        // Power-of-two size but misaligned start.
        let r = IpRange::new(1, 2).unwrap();
        assert_eq!(r.as_single_prefix(), None);
        // Non-power-of-two size.
        let r = IpRange::new(0, 2).unwrap();
        assert_eq!(r.as_single_prefix(), None);
        // Whole space.
        let r = IpRange::new(0, u32::MAX).unwrap();
        assert_eq!(r.as_single_prefix(), Some(Prefix::DEFAULT));
    }

    #[test]
    fn to_cidrs_classic_example() {
        // 10.0.0.1 - 10.0.0.6 => .1/32 .2/31 .4/31 .6/32
        let r: IpRange = "10.0.0.1 - 10.0.0.6".parse().unwrap();
        let cidrs = r.to_cidrs();
        assert_eq!(
            cidrs,
            vec![
                pfx("10.0.0.1/32"),
                pfx("10.0.0.2/31"),
                pfx("10.0.0.4/31"),
                pfx("10.0.0.6/32"),
            ]
        );
    }

    #[test]
    fn to_cidrs_whole_space() {
        let r = IpRange::new(0, u32::MAX).unwrap();
        assert_eq!(r.to_cidrs(), vec![Prefix::DEFAULT]);
    }

    #[test]
    fn set_operations() {
        let a = IpRange::new(10, 20).unwrap();
        let b = IpRange::new(15, 30).unwrap();
        let c = IpRange::new(21, 25).unwrap();
        assert_eq!(a.intersection(&b), Some(IpRange::new(15, 20).unwrap()));
        assert_eq!(a.intersection(&c), None);
        assert_eq!(a.union_if_contiguous(&c), Some(IpRange::new(10, 25).unwrap()));
        assert_eq!(
            a.union_if_contiguous(&b),
            Some(IpRange::new(10, 30).unwrap())
        );
        let far = IpRange::new(100, 200).unwrap();
        assert_eq!(a.union_if_contiguous(&far), None);
    }

    #[test]
    fn union_at_space_boundary_no_overflow() {
        let hi = IpRange::new(u32::MAX - 1, u32::MAX).unwrap();
        let lo = IpRange::new(0, 1).unwrap();
        assert_eq!(hi.union_if_contiguous(&lo), None);
        assert_eq!(lo.union_if_contiguous(&hi), None);
    }

    proptest! {
        #[test]
        fn prop_to_cidrs_exact_cover(start in any::<u32>(), span in 0u32..100_000) {
            let end = start.saturating_add(span);
            let r = IpRange::new(start, end).unwrap();
            let cidrs = r.to_cidrs();
            // Total size matches.
            let total: u64 = cidrs.iter().map(|p| p.num_addresses()).sum();
            prop_assert_eq!(total, r.num_addresses());
            // Contiguous, in-order, inside the range.
            let mut cur = start as u64;
            for p in &cidrs {
                prop_assert_eq!(p.network() as u64, cur);
                cur += p.num_addresses();
            }
            prop_assert_eq!(cur - 1, end as u64);
            // Minimality: no two adjacent blocks are aggregatable siblings.
            for w in cidrs.windows(2) {
                prop_assert!(w[0].aggregate(&w[1]).is_none());
            }
        }

        #[test]
        fn prop_prefix_range_roundtrip(net in any::<u32>(), len in 0u8..=32) {
            let p = Prefix::new_unchecked_masked(net, len);
            let r = IpRange::from_prefix(p);
            prop_assert_eq!(r.as_single_prefix(), Some(p));
            prop_assert_eq!(r.to_cidrs(), vec![p]);
        }
    }
}
