//! Error type for address-space parsing and arithmetic.

use std::fmt;

/// Errors produced by `nettypes` parsing and arithmetic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetTypesError {
    /// A dotted-quad address failed to parse.
    InvalidAddress(String),
    /// A CIDR prefix string failed to parse.
    InvalidPrefix(String),
    /// A prefix length outside `0..=32`.
    InvalidPrefixLen(u8),
    /// An ASN string failed to parse.
    InvalidAsn(String),
    /// A date string failed to parse or encodes an impossible date.
    InvalidDate(String),
    /// An `start-end` range with `start > end`.
    InvalidRange {
        /// Range start (inclusive).
        start: u32,
        /// Range end (inclusive).
        end: u32,
    },
    /// Requested an operation that would leave IPv4 space (e.g. the
    /// parent of `0.0.0.0/0` or splitting a /32).
    OutOfSpace(&'static str),
}

impl fmt::Display for NetTypesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetTypesError::InvalidAddress(s) => write!(f, "invalid IPv4 address: {s:?}"),
            NetTypesError::InvalidPrefix(s) => write!(f, "invalid IPv4 prefix: {s:?}"),
            NetTypesError::InvalidPrefixLen(l) => write!(f, "invalid prefix length: /{l}"),
            NetTypesError::InvalidAsn(s) => write!(f, "invalid ASN: {s:?}"),
            NetTypesError::InvalidDate(s) => write!(f, "invalid date: {s:?}"),
            NetTypesError::InvalidRange { start, end } => {
                write!(
                    f,
                    "invalid range: start {} > end {}",
                    crate::fmt_ipv4(*start),
                    crate::fmt_ipv4(*end)
                )
            }
            NetTypesError::OutOfSpace(what) => write!(f, "operation leaves IPv4 space: {what}"),
        }
    }
}

impl std::error::Error for NetTypesError {}
