//! # nettypes
//!
//! Foundational address-space types shared by every `drywells` crate:
//!
//! * [`Prefix`] — an IPv4 CIDR prefix with exhaustive arithmetic
//!   (containment, splitting, aggregation, iteration),
//! * [`IpRange`] — an inclusive `start..=end` address range as used by
//!   WHOIS `inetnum` objects, convertible to/from minimal CIDR covers,
//! * [`Asn`] — an autonomous-system number with IANA reservation
//!   knowledge, plus [`Origin`] for AS_SET / MOAS origins,
//! * [`PrefixTrie`] — a binary (Patricia-style) trie keyed by prefixes
//!   with longest-prefix match and covered/covering queries,
//! * [`PrefixSet`] — an aggregating set of prefixes that can count the
//!   number of unique addresses covered,
//! * [`bogons`] — the private/reserved address space and reserved ASN
//!   tables used to sanitize routing data,
//! * [`Date`] — a compact calendar date used as the simulation clock.
//!
//! The crate is deliberately dependency-light (only `serde` for
//! serialization of records) and fully synchronous: all higher-level
//! "services" in the workspace are in-process simulations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asn;
pub mod bogons;
pub mod date;
pub mod error;
pub mod prefix;
pub mod range;
pub mod set;
pub mod trie;

pub use asn::{Asn, Origin};
pub use date::{Date, DateRange};
pub use error::NetTypesError;
pub use prefix::Prefix;
pub use range::IpRange;
pub use set::PrefixSet;
pub use trie::PrefixTrie;

/// Format a raw IPv4 address (host byte order) in dotted-quad notation.
pub fn fmt_ipv4(addr: u32) -> String {
    format!(
        "{}.{}.{}.{}",
        (addr >> 24) & 0xff,
        (addr >> 16) & 0xff,
        (addr >> 8) & 0xff,
        addr & 0xff
    )
}

/// Parse a dotted-quad IPv4 address into host byte order.
pub fn parse_ipv4(s: &str) -> Result<u32, NetTypesError> {
    let mut parts = s.split('.');
    let mut addr: u32 = 0;
    let mut count = 0;
    for part in parts.by_ref() {
        if count == 4 {
            return Err(NetTypesError::InvalidAddress(s.to_string()));
        }
        // Reject empty or oversized octets ("1..2.3", "256.0.0.1").
        let octet: u32 = part
            .parse::<u8>()
            .map_err(|_| NetTypesError::InvalidAddress(s.to_string()))?
            .into();
        addr = (addr << 8) | octet;
        count += 1;
    }
    if count != 4 {
        return Err(NetTypesError::InvalidAddress(s.to_string()));
    }
    Ok(addr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipv4_roundtrip() {
        for s in ["0.0.0.0", "255.255.255.255", "192.0.2.1", "10.0.0.0"] {
            assert_eq!(fmt_ipv4(parse_ipv4(s).unwrap()), s);
        }
    }

    #[test]
    fn ipv4_rejects_garbage() {
        for s in ["", "1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", "1..2.3", "-1.0.0.0"] {
            assert!(parse_ipv4(s).is_err(), "{s} should be rejected");
        }
    }

    #[test]
    fn ipv4_known_values() {
        assert_eq!(parse_ipv4("0.0.0.1").unwrap(), 1);
        assert_eq!(parse_ipv4("1.0.0.0").unwrap(), 1 << 24);
        assert_eq!(parse_ipv4("128.0.0.0").unwrap(), 1 << 31);
    }
}
