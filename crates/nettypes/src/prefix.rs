//! IPv4 CIDR prefixes and their arithmetic.

use crate::error::NetTypesError;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::str::FromStr;

/// An IPv4 CIDR prefix, e.g. `193.0.0.0/21`.
///
/// The network address is always stored in canonical form: host bits
/// below the prefix length are zero. Construction via [`Prefix::new`]
/// enforces this; the raw constructor [`Prefix::new_unchecked_masked`]
/// masks silently.
///
/// Ordering sorts by network address first and then by prefix length
/// (less-specific first), which yields the conventional "supernet
/// before subnets" iteration order used by routing-table dumps.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Prefix {
    network: u32,
    len: u8,
}

#[allow(clippy::len_without_is_empty)]
impl Prefix {
    /// The whole IPv4 space, `0.0.0.0/0`.
    pub const DEFAULT: Prefix = Prefix { network: 0, len: 0 };

    /// Create a prefix, rejecting invalid lengths and non-canonical
    /// network addresses (host bits set).
    pub fn new(network: u32, len: u8) -> Result<Self, NetTypesError> {
        if len > 32 {
            return Err(NetTypesError::InvalidPrefixLen(len));
        }
        let mask = Self::mask_for(len);
        if network & !mask != 0 {
            return Err(NetTypesError::InvalidPrefix(format!(
                "{}/{len} has host bits set",
                crate::fmt_ipv4(network)
            )));
        }
        Ok(Prefix { network, len })
    }

    /// Create a prefix, masking away any host bits. Panics on `len > 32`.
    pub fn new_unchecked_masked(network: u32, len: u8) -> Self {
        assert!(len <= 32, "prefix length {len} > 32");
        Prefix {
            network: network & Self::mask_for(len),
            len,
        }
    }

    /// The netmask for a given prefix length.
    #[inline]
    pub fn mask_for(len: u8) -> u32 {
        debug_assert!(len <= 32);
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    /// The network address (first address) of the prefix.
    #[inline]
    pub fn network(&self) -> u32 {
        self.network
    }

    /// The prefix length in bits. (A prefix is never "empty", so there
    /// is deliberately no `is_empty`.)
    #[inline]
    pub fn len(&self) -> u8 {
        self.len
    }

    /// The last address covered by the prefix (broadcast address for
    /// subnet-sized prefixes).
    #[inline]
    pub fn last_address(&self) -> u32 {
        self.network | !Self::mask_for(self.len)
    }

    /// Number of addresses covered: `2^(32-len)`.
    ///
    /// Returned as `u64` so `/0` (2^32) is representable.
    #[inline]
    pub fn num_addresses(&self) -> u64 {
        1u64 << (32 - self.len as u32)
    }

    /// True if `addr` falls inside this prefix.
    #[inline]
    pub fn contains_address(&self, addr: u32) -> bool {
        addr & Self::mask_for(self.len) == self.network
    }

    /// True if `other` is equal to or more specific than `self`
    /// (i.e. fully covered by `self`).
    #[inline]
    pub fn covers(&self, other: &Prefix) -> bool {
        other.len >= self.len && self.contains_address(other.network)
    }

    /// True if `other` is *strictly* more specific than `self`.
    #[inline]
    pub fn covers_strictly(&self, other: &Prefix) -> bool {
        other.len > self.len && self.contains_address(other.network)
    }

    /// True if the two prefixes share any address.
    #[inline]
    pub fn overlaps(&self, other: &Prefix) -> bool {
        self.covers(other) || other.covers(self)
    }

    /// The immediate parent (one bit less specific), or an error at /0.
    pub fn parent(&self) -> Result<Prefix, NetTypesError> {
        if self.len == 0 {
            return Err(NetTypesError::OutOfSpace("parent of /0"));
        }
        Ok(Prefix::new_unchecked_masked(self.network, self.len - 1))
    }

    /// The two immediate children (one bit more specific), or an error
    /// at /32.
    pub fn children(&self) -> Result<(Prefix, Prefix), NetTypesError> {
        if self.len == 32 {
            return Err(NetTypesError::OutOfSpace("children of /32"));
        }
        let left = Prefix {
            network: self.network,
            len: self.len + 1,
        };
        let right = Prefix {
            network: self.network | (1u32 << (31 - self.len as u32)),
            len: self.len + 1,
        };
        Ok((left, right))
    }

    /// The sibling sharing this prefix's parent, or an error at /0.
    pub fn sibling(&self) -> Result<Prefix, NetTypesError> {
        if self.len == 0 {
            return Err(NetTypesError::OutOfSpace("sibling of /0"));
        }
        Ok(Prefix {
            network: self.network ^ (1u32 << (32 - self.len as u32)),
            len: self.len,
        })
    }

    /// Split this prefix into all sub-prefixes of length `target_len`.
    ///
    /// Returns an error if `target_len` is shorter than `self.len` or
    /// longer than 32. Splitting into the same length yields `[self]`.
    pub fn split(&self, target_len: u8) -> Result<Vec<Prefix>, NetTypesError> {
        if target_len > 32 {
            return Err(NetTypesError::InvalidPrefixLen(target_len));
        }
        if target_len < self.len {
            return Err(NetTypesError::OutOfSpace("split to less-specific length"));
        }
        let count = 1u64 << (target_len - self.len) as u32;
        let step = 1u64 << (32 - target_len as u32);
        let mut out = Vec::with_capacity(count as usize);
        let mut net = self.network as u64;
        for _ in 0..count {
            out.push(Prefix {
                network: net as u32,
                len: target_len,
            });
            net += step;
        }
        Ok(out)
    }

    /// The `n`-th sub-prefix of length `target_len` (0-based), without
    /// materializing the whole split.
    pub fn subprefix(&self, target_len: u8, n: u64) -> Result<Prefix, NetTypesError> {
        if target_len > 32 {
            return Err(NetTypesError::InvalidPrefixLen(target_len));
        }
        if target_len < self.len {
            return Err(NetTypesError::OutOfSpace("subprefix with less-specific length"));
        }
        let count = 1u64 << (target_len - self.len) as u32;
        if n >= count {
            return Err(NetTypesError::OutOfSpace("subprefix index out of range"));
        }
        let step = 1u64 << (32 - target_len as u32);
        Ok(Prefix {
            network: (self.network as u64 + n * step) as u32,
            len: target_len,
        })
    }

    /// Whether `self` and `other` can be aggregated into their common
    /// parent (i.e. they are siblings).
    pub fn is_aggregatable_with(&self, other: &Prefix) -> bool {
        self.len == other.len
            && self.len > 0
            && self.network ^ other.network == 1u32 << (32 - self.len as u32)
    }

    /// Aggregate two sibling prefixes into their parent.
    pub fn aggregate(&self, other: &Prefix) -> Option<Prefix> {
        if self.is_aggregatable_with(other) {
            Some(Prefix {
                network: self.network & other.network,
                len: self.len - 1,
            })
        } else {
            None
        }
    }

    /// Iterate over all addresses of the prefix. Useful only for small
    /// prefixes; guarded by `debug_assert` against anything larger than
    /// a /16 to avoid accidental 2^32 loops in tests.
    pub fn addresses(&self) -> impl Iterator<Item = u32> {
        debug_assert!(self.len >= 16, "iterating addresses of /{} is excessive", self.len);
        let start = self.network as u64;
        let end = self.last_address() as u64;
        (start..=end).map(|a| a as u32)
    }

    /// The bit at position `i` (0 = most significant) of the network
    /// address. Used by the trie.
    #[inline]
    pub(crate) fn bit(&self, i: u8) -> bool {
        debug_assert!(i < 32);
        self.network & (1u32 << (31 - i as u32)) != 0
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", crate::fmt_ipv4(self.network), self.len)
    }
}

impl fmt::Debug for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Prefix({self})")
    }
}

impl FromStr for Prefix {
    type Err = NetTypesError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (net, len) = s
            .split_once('/')
            .ok_or_else(|| NetTypesError::InvalidPrefix(s.to_string()))?;
        let network = crate::parse_ipv4(net)?;
        let len: u8 = len
            .parse()
            .map_err(|_| NetTypesError::InvalidPrefix(s.to_string()))?;
        Prefix::new(network, len)
    }
}

impl Ord for Prefix {
    fn cmp(&self, other: &Self) -> Ordering {
        self.network
            .cmp(&other.network)
            .then(self.len.cmp(&other.len))
    }
}

impl PartialOrd for Prefix {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Parse a prefix from a literal, panicking on failure. Test helper.
pub fn pfx(s: &str) -> Prefix {
    s.parse().expect("invalid prefix literal")
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parse_display_roundtrip() {
        for s in ["0.0.0.0/0", "10.0.0.0/8", "193.0.0.0/21", "192.0.2.1/32"] {
            assert_eq!(pfx(s).to_string(), s);
        }
    }

    #[test]
    fn rejects_host_bits() {
        assert!("10.0.0.1/8".parse::<Prefix>().is_err());
        assert!(Prefix::new(1, 31).is_err());
        assert!(Prefix::new(1, 32).is_ok());
    }

    #[test]
    fn rejects_bad_len() {
        assert!("10.0.0.0/33".parse::<Prefix>().is_err());
        assert!(Prefix::new(0, 33).is_err());
        assert!("10.0.0.0/".parse::<Prefix>().is_err());
        assert!("10.0.0.0".parse::<Prefix>().is_err());
    }

    #[test]
    fn masks() {
        assert_eq!(Prefix::mask_for(0), 0);
        assert_eq!(Prefix::mask_for(1), 0x8000_0000);
        assert_eq!(Prefix::mask_for(24), 0xffff_ff00);
        assert_eq!(Prefix::mask_for(32), u32::MAX);
    }

    #[test]
    fn containment() {
        let p8 = pfx("10.0.0.0/8");
        let p24 = pfx("10.1.2.0/24");
        assert!(p8.covers(&p24));
        assert!(p8.covers_strictly(&p24));
        assert!(!p24.covers(&p8));
        assert!(p8.covers(&p8));
        assert!(!p8.covers_strictly(&p8));
        assert!(p8.overlaps(&p24));
        assert!(p24.overlaps(&p8));
        assert!(!pfx("11.0.0.0/8").overlaps(&p24));
    }

    #[test]
    fn default_covers_everything() {
        assert!(Prefix::DEFAULT.covers(&pfx("255.255.255.255/32")));
        assert!(Prefix::DEFAULT.covers(&pfx("0.0.0.0/32")));
        assert!(Prefix::DEFAULT.contains_address(u32::MAX));
        assert_eq!(Prefix::DEFAULT.num_addresses(), 1u64 << 32);
    }

    #[test]
    fn family_relations() {
        let p = pfx("10.0.0.0/9");
        assert_eq!(p.parent().unwrap(), pfx("10.0.0.0/8"));
        assert_eq!(p.sibling().unwrap(), pfx("10.128.0.0/9"));
        let (l, r) = pfx("10.0.0.0/8").children().unwrap();
        assert_eq!(l, p);
        assert_eq!(r, pfx("10.128.0.0/9"));
        assert!(Prefix::DEFAULT.parent().is_err());
        assert!(Prefix::DEFAULT.sibling().is_err());
        assert!(pfx("1.2.3.4/32").children().is_err());
    }

    #[test]
    fn split_counts() {
        let p = pfx("192.0.2.0/24");
        assert_eq!(p.split(24).unwrap(), vec![p]);
        let halves = p.split(25).unwrap();
        assert_eq!(halves, vec![pfx("192.0.2.0/25"), pfx("192.0.2.128/25")]);
        assert_eq!(p.split(28).unwrap().len(), 16);
        assert!(p.split(23).is_err());
        assert!(p.split(33).is_err());
    }

    #[test]
    fn split_of_default_to_slash1() {
        let halves = Prefix::DEFAULT.split(1).unwrap();
        assert_eq!(halves, vec![pfx("0.0.0.0/1"), pfx("128.0.0.0/1")]);
    }

    #[test]
    fn subprefix_matches_split() {
        let p = pfx("10.0.0.0/8");
        let all = p.split(12).unwrap();
        for (i, q) in all.iter().enumerate() {
            assert_eq!(p.subprefix(12, i as u64).unwrap(), *q);
        }
        assert!(p.subprefix(12, 16).is_err());
    }

    #[test]
    fn aggregation() {
        let a = pfx("10.0.0.0/9");
        let b = pfx("10.128.0.0/9");
        assert!(a.is_aggregatable_with(&b));
        assert_eq!(a.aggregate(&b).unwrap(), pfx("10.0.0.0/8"));
        assert_eq!(b.aggregate(&a).unwrap(), pfx("10.0.0.0/8"));
        // Not siblings: same parent bit pattern required.
        assert!(pfx("10.128.0.0/9").aggregate(&pfx("11.0.0.0/9")).is_none());
        assert!(a.aggregate(&a).is_none());
    }

    #[test]
    fn ordering_supernet_first() {
        let mut v = vec![pfx("10.0.0.0/24"), pfx("10.0.0.0/8"), pfx("9.0.0.0/8")];
        v.sort();
        assert_eq!(v, vec![pfx("9.0.0.0/8"), pfx("10.0.0.0/8"), pfx("10.0.0.0/24")]);
    }

    #[test]
    fn address_iteration() {
        let p = pfx("192.0.2.248/29");
        let addrs: Vec<u32> = p.addresses().collect();
        assert_eq!(addrs.len(), 8);
        assert_eq!(addrs[0], p.network());
        assert_eq!(*addrs.last().unwrap(), p.last_address());
    }

    proptest! {
        #[test]
        fn prop_roundtrip(net in any::<u32>(), len in 0u8..=32) {
            let p = Prefix::new_unchecked_masked(net, len);
            let s = p.to_string();
            prop_assert_eq!(s.parse::<Prefix>().unwrap(), p);
        }

        #[test]
        fn prop_children_partition_parent(net in any::<u32>(), len in 0u8..32) {
            let p = Prefix::new_unchecked_masked(net, len);
            let (l, r) = p.children().unwrap();
            prop_assert_eq!(l.num_addresses() + r.num_addresses(), p.num_addresses());
            prop_assert!(p.covers(&l) && p.covers(&r));
            prop_assert!(!l.overlaps(&r));
            prop_assert_eq!(l.aggregate(&r).unwrap(), p);
        }

        #[test]
        fn prop_contains_consistent(net in any::<u32>(), len in 0u8..=32, addr in any::<u32>()) {
            let p = Prefix::new_unchecked_masked(net, len);
            let inside = addr >= p.network() && addr <= p.last_address();
            prop_assert_eq!(p.contains_address(addr), inside);
        }

        #[test]
        fn prop_covers_iff_range_subset(a in any::<u32>(), la in 0u8..=32,
                                        b in any::<u32>(), lb in 0u8..=32) {
            let p = Prefix::new_unchecked_masked(a, la);
            let q = Prefix::new_unchecked_masked(b, lb);
            let subset = q.network() >= p.network() && q.last_address() <= p.last_address();
            prop_assert_eq!(p.covers(&q), subset);
        }
    }
}
