//! A compact proleptic-Gregorian calendar date used as the simulation
//! clock throughout the workspace.
//!
//! Internally a `Date` is the number of days since 1970-01-01 (may be
//! negative), so day arithmetic is trivial and daily pipelines can use
//! it as an array index. We deliberately avoid pulling in a calendar
//! crate: the study spans 2009–2020 and needs only day resolution.

use crate::error::NetTypesError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};
use std::str::FromStr;

/// Days in each month of a non-leap year.
const MONTH_DAYS: [i64; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

fn is_leap(year: i64) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

fn days_in_month(year: i64, month: u8) -> i64 {
    if month == 2 && is_leap(year) {
        29
    } else {
        MONTH_DAYS[(month - 1) as usize]
    }
}

/// Days from 1970-01-01 to `year`-01-01.
fn days_to_year(year: i64) -> i64 {
    // Count leap days between year 1 and `year` (exclusive), offset to epoch.
    let y = year - 1;
    let days_from_year1 = y * 365 + y / 4 - y / 100 + y / 400;
    const DAYS_1970: i64 = 719162; // days from 0001-01-01 to 1970-01-01
    days_from_year1 - DAYS_1970
}

/// A calendar date with day resolution.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Date(i64);

impl Date {
    /// Construct from year/month/day; validates the calendar.
    pub fn ymd(year: i64, month: u8, day: u8) -> Result<Self, NetTypesError> {
        if !(1..=12).contains(&month) || day == 0 || (day as i64) > days_in_month(year, month) {
            return Err(NetTypesError::InvalidDate(format!(
                "{year:04}-{month:02}-{day:02}"
            )));
        }
        let mut days = days_to_year(year);
        for m in 1..month {
            days += days_in_month(year, m);
        }
        days += day as i64 - 1;
        Ok(Date(days))
    }

    /// Construct from a raw day count since 1970-01-01.
    pub const fn from_days(days: i64) -> Self {
        Date(days)
    }

    /// The raw day count since 1970-01-01.
    pub const fn days_since_epoch(&self) -> i64 {
        self.0
    }

    /// Decompose into (year, month, day).
    pub fn to_ymd(&self) -> (i64, u8, u8) {
        // Walk years from a close lower bound.
        let mut year = 1970 + self.0.div_euclid(366);
        while days_to_year(year + 1) <= self.0 {
            year += 1;
        }
        while days_to_year(year) > self.0 {
            year -= 1;
        }
        let mut rem = self.0 - days_to_year(year);
        let mut month = 1u8;
        while rem >= days_in_month(year, month) {
            rem -= days_in_month(year, month);
            month += 1;
        }
        (year, month, rem as u8 + 1)
    }

    /// The calendar year.
    pub fn year(&self) -> i64 {
        self.to_ymd().0
    }

    /// The calendar month, 1-based.
    pub fn month(&self) -> u8 {
        self.to_ymd().1
    }

    /// The day of the month, 1-based.
    pub fn day(&self) -> u8 {
        self.to_ymd().2
    }

    /// Zero-based quarter within the year (0..=3).
    pub fn quarter(&self) -> u8 {
        (self.month() - 1) / 3
    }

    /// A label like `2019Q4` as used on the paper's x-axes.
    pub fn quarter_label(&self) -> String {
        format!("{}Q{}", self.year(), self.quarter() + 1)
    }

    /// Index of the calendar quarter since 1970Q1 — a convenient
    /// bucketing key for the paper's three-month aggregation windows.
    pub fn quarter_index(&self) -> i64 {
        let (y, m, _) = self.to_ymd();
        (y - 1970) * 4 + ((m - 1) / 3) as i64
    }

    /// Index of the calendar month since 1970-01.
    pub fn month_index(&self) -> i64 {
        let (y, m, _) = self.to_ymd();
        (y - 1970) * 12 + (m - 1) as i64
    }

    /// The next day.
    pub fn succ(&self) -> Date {
        Date(self.0 + 1)
    }

    /// The previous day.
    pub fn pred(&self) -> Date {
        Date(self.0 - 1)
    }
}

impl Add<i64> for Date {
    type Output = Date;
    fn add(self, rhs: i64) -> Date {
        Date(self.0 + rhs)
    }
}

impl AddAssign<i64> for Date {
    fn add_assign(&mut self, rhs: i64) {
        self.0 += rhs;
    }
}

impl Sub<i64> for Date {
    type Output = Date;
    fn sub(self, rhs: i64) -> Date {
        Date(self.0 - rhs)
    }
}

impl SubAssign<i64> for Date {
    fn sub_assign(&mut self, rhs: i64) {
        self.0 -= rhs;
    }
}

impl Sub<Date> for Date {
    type Output = i64;
    /// Number of days from `rhs` to `self`.
    fn sub(self, rhs: Date) -> i64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.to_ymd();
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

impl fmt::Debug for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Date({self})")
    }
}

impl FromStr for Date {
    type Err = NetTypesError;

    /// Parse `YYYY-MM-DD`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut it = s.split('-');
        let (y, m, d) = (it.next(), it.next(), it.next());
        if it.next().is_some() {
            return Err(NetTypesError::InvalidDate(s.to_string()));
        }
        match (y, m, d) {
            (Some(y), Some(m), Some(d)) => {
                let y: i64 = y.parse().map_err(|_| NetTypesError::InvalidDate(s.into()))?;
                let m: u8 = m.parse().map_err(|_| NetTypesError::InvalidDate(s.into()))?;
                let d: u8 = d.parse().map_err(|_| NetTypesError::InvalidDate(s.into()))?;
                Date::ymd(y, m, d)
            }
            _ => Err(NetTypesError::InvalidDate(s.to_string())),
        }
    }
}

/// A half-open sequence of consecutive days `[start, end]` (inclusive),
/// iterable day by day — the shape of every "daily pipeline" loop in
/// the reproduction.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct DateRange {
    /// First day, inclusive.
    pub start: Date,
    /// Last day, inclusive.
    pub end: Date,
}

impl DateRange {
    /// Create a range; panics if `start > end`.
    pub fn new(start: Date, end: Date) -> Self {
        assert!(start <= end, "DateRange start {start} > end {end}");
        DateRange { start, end }
    }

    /// Number of days covered.
    pub fn num_days(&self) -> i64 {
        self.end - self.start + 1
    }

    /// Whether `d` falls inside the range.
    pub fn contains(&self, d: Date) -> bool {
        d >= self.start && d <= self.end
    }

    /// Iterate the days in order.
    pub fn iter(&self) -> impl Iterator<Item = Date> {
        let s = self.start.days_since_epoch();
        let e = self.end.days_since_epoch();
        (s..=e).map(Date::from_days)
    }
}

impl IntoIterator for DateRange {
    type Item = Date;
    type IntoIter = Box<dyn Iterator<Item = Date>>;
    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

/// Parse a date from a literal, panicking on failure. Test helper.
pub fn date(s: &str) -> Date {
    s.parse().expect("invalid date literal")
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn epoch_is_zero() {
        assert_eq!(Date::ymd(1970, 1, 1).unwrap().days_since_epoch(), 0);
        assert_eq!(Date::ymd(1970, 1, 2).unwrap().days_since_epoch(), 1);
        assert_eq!(Date::ymd(1969, 12, 31).unwrap().days_since_epoch(), -1);
    }

    #[test]
    fn known_dates() {
        // Paper landmarks.
        assert_eq!(date("2019-11-25").days_since_epoch(), 18225);
        assert_eq!(date("2000-01-01").days_since_epoch(), 10957);
        assert_eq!(date("2020-06-01").to_string(), "2020-06-01");
    }

    #[test]
    fn leap_years() {
        assert!(is_leap(2000));
        assert!(is_leap(2020));
        assert!(!is_leap(1900));
        assert!(!is_leap(2019));
        assert!(Date::ymd(2020, 2, 29).is_ok());
        assert!(Date::ymd(2019, 2, 29).is_err());
        assert!(Date::ymd(1900, 2, 29).is_err());
        assert!(Date::ymd(2000, 2, 29).is_ok());
    }

    #[test]
    fn validation() {
        assert!(Date::ymd(2020, 0, 1).is_err());
        assert!(Date::ymd(2020, 13, 1).is_err());
        assert!(Date::ymd(2020, 1, 0).is_err());
        assert!(Date::ymd(2020, 4, 31).is_err());
        assert!("2020-13-01".parse::<Date>().is_err());
        assert!("2020-01".parse::<Date>().is_err());
        assert!("2020-01-01-01".parse::<Date>().is_err());
    }

    #[test]
    fn pre_epoch_decomposition() {
        assert_eq!(Date::from_days(-1).to_ymd(), (1969, 12, 31));
        assert_eq!(Date::from_days(-365).to_ymd(), (1969, 1, 1));
        // 1968 is a leap year; 1900 is a century non-leap.
        assert_eq!(Date::from_days(-366).to_ymd(), (1968, 12, 31));
        assert_eq!(date("1968-02-29").succ().to_string(), "1968-03-01");
        assert_eq!(date("1900-02-28").succ().to_string(), "1900-03-01");
        // The proleptic calendar bottoms out at 0001-01-01 cleanly.
        assert_eq!(Date::from_days(-719_162).to_ymd(), (1, 1, 1));
        assert_eq!(Date::from_days(-719_162).to_string(), "0001-01-01");
    }

    #[test]
    fn arithmetic() {
        let d = date("2019-12-31");
        assert_eq!((d + 1).to_string(), "2020-01-01");
        assert_eq!((d - 365).to_string(), "2018-12-31");
        assert_eq!(date("2020-03-01") - date("2020-02-01"), 29);
        assert_eq!(date("2019-03-01") - date("2019-02-01"), 28);
    }

    #[test]
    fn quarters() {
        assert_eq!(date("2016-01-01").quarter_label(), "2016Q1");
        assert_eq!(date("2016-03-31").quarter_label(), "2016Q1");
        assert_eq!(date("2016-04-01").quarter_label(), "2016Q2");
        assert_eq!(date("2016-12-31").quarter_label(), "2016Q4");
        assert_eq!(
            date("2016-04-01").quarter_index() - date("2016-01-01").quarter_index(),
            1
        );
        assert_eq!(
            date("2020-01-01").quarter_index() - date("2019-10-01").quarter_index(),
            1
        );
    }

    #[test]
    fn range_iteration() {
        let r = DateRange::new(date("2020-02-27"), date("2020-03-02"));
        let days: Vec<String> = r.iter().map(|d| d.to_string()).collect();
        assert_eq!(
            days,
            vec!["2020-02-27", "2020-02-28", "2020-02-29", "2020-03-01", "2020-03-02"]
        );
        assert_eq!(r.num_days(), 5);
        assert!(r.contains(date("2020-02-29")));
        assert!(!r.contains(date("2020-03-03")));
    }

    proptest! {
        #[test]
        fn prop_roundtrip_days(days in -200_000i64..200_000) {
            let d = Date::from_days(days);
            let (y, m, dd) = d.to_ymd();
            prop_assert_eq!(Date::ymd(y, m, dd).unwrap(), d);
        }

        #[test]
        fn prop_string_roundtrip(days in 0i64..40_000) {
            let d = Date::from_days(days);
            prop_assert_eq!(d.to_string().parse::<Date>().unwrap(), d);
        }

        #[test]
        fn prop_succ_monotone(days in -10_000i64..40_000) {
            let d = Date::from_days(days);
            prop_assert!(d.succ() > d);
            prop_assert_eq!(d.succ().pred(), d);
            prop_assert_eq!(d.succ() - d, 1);
        }
    }
}
