//! Bogon address space and route sanitization predicates.
//!
//! The paper sanitizes BGP data by removing "routes for private and
//! reserved address space [Team Cymru bogon reference], routes that
//! contain ASes currently reserved by IANA, and routes that contain a
//! loop in their AS-PATH". This module provides those predicates.

use crate::asn::Asn;
use crate::prefix::Prefix;
use std::collections::HashSet;

/// The IANA special-purpose IPv4 registry entries (the "full bogon"
/// prefix list as distributed by Team Cymru's bogon reference).
pub fn bogon_prefixes() -> Vec<Prefix> {
    [
        "0.0.0.0/8",        // "this network", RFC 791
        "10.0.0.0/8",       // private, RFC 1918
        "100.64.0.0/10",    // CGN shared space, RFC 6598
        "127.0.0.0/8",      // loopback, RFC 1122
        "169.254.0.0/16",   // link local, RFC 3927
        "172.16.0.0/12",    // private, RFC 1918
        "192.0.0.0/24",     // IETF protocol assignments, RFC 6890
        "192.0.2.0/24",     // TEST-NET-1, RFC 5737
        "192.168.0.0/16",   // private, RFC 1918
        "198.18.0.0/15",    // benchmarking, RFC 2544
        "198.51.100.0/24",  // TEST-NET-2, RFC 5737
        "203.0.113.0/24",   // TEST-NET-3, RFC 5737
        "224.0.0.0/4",      // multicast, RFC 5771
        "240.0.0.0/4",      // reserved, RFC 1112
    ]
    .iter()
    .map(|s| s.parse().expect("static bogon table"))
    .collect()
}

/// A compiled bogon filter for fast per-route checks.
#[derive(Clone, Debug)]
pub struct BogonFilter {
    bogons: Vec<Prefix>,
}

impl Default for BogonFilter {
    fn default() -> Self {
        Self::new()
    }
}

impl BogonFilter {
    /// Build the filter from the static bogon table.
    pub fn new() -> Self {
        BogonFilter {
            bogons: bogon_prefixes(),
        }
    }

    /// True if the prefix overlaps any bogon block (i.e. the route must
    /// be discarded). Rejections are counted
    /// (`bogon_routes_dropped_total`); the accept path stays untouched.
    pub fn is_bogon(&self, prefix: &Prefix) -> bool {
        let hit = self.bogons.iter().any(|b| b.overlaps(prefix));
        if hit {
            use std::sync::OnceLock;
            static DROPPED: OnceLock<std::sync::Arc<obs::metrics::Counter>> = OnceLock::new();
            DROPPED
                .get_or_init(|| obs::metrics::counter("bogon_routes_dropped_total"))
                .inc();
        }
        hit
    }
}

/// True if the AS path contains a reserved ASN.
pub fn path_has_reserved_asn(path: &[Asn]) -> bool {
    path.iter().any(Asn::is_reserved)
}

/// True if the AS path contains a loop: the same ASN appearing in two
/// non-contiguous runs (legitimate prepending — the same ASN repeated
/// consecutively — is not a loop).
pub fn path_has_loop(path: &[Asn]) -> bool {
    let mut seen: HashSet<Asn> = HashSet::new();
    let mut prev: Option<Asn> = None;
    for &asn in path {
        if prev == Some(asn) {
            continue; // prepending
        }
        if !seen.insert(asn) {
            return true;
        }
        prev = Some(asn);
    }
    false
}

/// The full route-sanitization predicate from §4 of the paper: keep a
/// route only if its prefix is not bogon, its path has no reserved ASN
/// and no loop.
pub fn route_is_clean(filter: &BogonFilter, prefix: &Prefix, path: &[Asn]) -> bool {
    !filter.is_bogon(prefix) && !path_has_reserved_asn(path) && !path_has_loop(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefix::pfx;

    #[test]
    fn bogon_hits() {
        let f = BogonFilter::new();
        assert!(f.is_bogon(&pfx("10.1.2.0/24")));
        assert!(f.is_bogon(&pfx("192.168.0.0/16")));
        assert!(f.is_bogon(&pfx("100.64.0.0/10")));
        // A less-specific covering a bogon block is also dirty.
        assert!(f.is_bogon(&pfx("192.0.0.0/8")));
        assert!(f.is_bogon(&Prefix::DEFAULT));
    }

    #[test]
    fn clean_space_passes() {
        let f = BogonFilter::new();
        assert!(!f.is_bogon(&pfx("193.0.0.0/21"))); // RIPE NCC
        assert!(!f.is_bogon(&pfx("8.8.8.0/24")));
        assert!(!f.is_bogon(&pfx("1.0.0.0/24")));
    }

    #[test]
    fn loop_detection() {
        let a = |v: &[u32]| v.iter().map(|&x| Asn(x)).collect::<Vec<_>>();
        assert!(!path_has_loop(&a(&[1, 2, 3])));
        // Prepending is not a loop.
        assert!(!path_has_loop(&a(&[1, 2, 2, 2, 3])));
        // Same ASN in two separate runs is a loop.
        assert!(path_has_loop(&a(&[1, 2, 1])));
        assert!(path_has_loop(&a(&[1, 2, 2, 3, 2])));
        assert!(!path_has_loop(&[]));
        assert!(!path_has_loop(&a(&[7])));
    }

    #[test]
    fn reserved_asn_detection() {
        let path = [Asn(3320), Asn(64512), Asn(174)];
        assert!(path_has_reserved_asn(&path));
        let clean = [Asn(3320), Asn(1299), Asn(174)];
        assert!(!path_has_reserved_asn(&clean));
    }

    #[test]
    fn full_predicate() {
        let f = BogonFilter::new();
        let clean_path = [Asn(3320), Asn(1299)];
        assert!(route_is_clean(&f, &pfx("193.0.0.0/21"), &clean_path));
        assert!(!route_is_clean(&f, &pfx("10.0.0.0/8"), &clean_path));
        assert!(!route_is_clean(&f, &pfx("193.0.0.0/21"), &[Asn(3320), Asn(0)]));
        assert!(!route_is_clean(&f, &pfx("193.0.0.0/21"), &[Asn(1), Asn(2), Asn(1)]));
    }
}
