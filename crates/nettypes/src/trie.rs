//! A binary trie keyed by IPv4 prefixes.
//!
//! The trie supports exact lookup, longest-prefix match, and the two
//! coverage queries the delegation-inference pipeline is built on:
//! *covered* (all entries at or below a prefix — candidate delegatees)
//! and *covering* (all entries above an address — candidate delegators).
//!
//! Nodes are stored in a flat arena (`Vec`) with index links, which
//! keeps the structure cache-friendly and avoids `Box`-chasing; this is
//! the usual idiom for routing-table tries in Rust networking code.

use crate::prefix::Prefix;
use std::fmt;

const NO_NODE: u32 = u32::MAX;

#[derive(Clone)]
struct Node<V> {
    children: [u32; 2],
    value: Option<V>,
}

impl<V> Node<V> {
    fn new() -> Self {
        Node {
            children: [NO_NODE, NO_NODE],
            value: None,
        }
    }
}

/// A map from [`Prefix`] to `V` supporting longest-prefix match and
/// coverage queries.
#[derive(Clone)]
pub struct PrefixTrie<V> {
    nodes: Vec<Node<V>>,
    len: usize,
}

impl<V> Default for PrefixTrie<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> PrefixTrie<V> {
    /// Create an empty trie.
    pub fn new() -> Self {
        PrefixTrie {
            nodes: vec![Node::new()],
            len: 0,
        }
    }

    /// Number of stored prefixes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the trie is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Remove all entries but keep allocated capacity.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.nodes.push(Node::new());
        self.len = 0;
    }

    fn descend(&self, prefix: &Prefix) -> Option<usize> {
        let mut idx = 0usize;
        for i in 0..prefix.len() {
            let bit = prefix.bit(i) as usize;
            let next = self.nodes[idx].children[bit];
            if next == NO_NODE {
                return None;
            }
            idx = next as usize;
        }
        Some(idx)
    }

    /// Insert a value, returning the previous value for the prefix if any.
    pub fn insert(&mut self, prefix: Prefix, value: V) -> Option<V> {
        let mut idx = 0usize;
        for i in 0..prefix.len() {
            let bit = prefix.bit(i) as usize;
            let next = self.nodes[idx].children[bit];
            idx = if next == NO_NODE {
                let new_idx = self.nodes.len() as u32;
                self.nodes.push(Node::new());
                self.nodes[idx].children[bit] = new_idx;
                new_idx as usize
            } else {
                next as usize
            };
        }
        let old = self.nodes[idx].value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Exact-match lookup.
    pub fn get(&self, prefix: &Prefix) -> Option<&V> {
        self.descend(prefix)
            .and_then(|idx| self.nodes[idx].value.as_ref())
    }

    /// Exact-match mutable lookup.
    pub fn get_mut(&mut self, prefix: &Prefix) -> Option<&mut V> {
        self.descend(prefix)
            .and_then(|idx| self.nodes[idx].value.as_mut())
    }

    /// Whether the exact prefix is present.
    pub fn contains(&self, prefix: &Prefix) -> bool {
        self.get(prefix).is_some()
    }

    /// Remove a prefix, returning its value. (The node chain is left in
    /// place; the arena is reclaimed only by [`PrefixTrie::clear`].)
    pub fn remove(&mut self, prefix: &Prefix) -> Option<V> {
        let idx = self.descend(prefix)?;
        let old = self.nodes[idx].value.take();
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// Longest-prefix match for an address: the most-specific stored
    /// prefix containing `addr`, together with its value.
    pub fn longest_match(&self, addr: u32) -> Option<(Prefix, &V)> {
        self.longest_match_upto(addr, 32)
    }

    /// Longest-prefix match considering only stored prefixes of length
    /// `<= max_len`. `longest_match_upto(addr, 32)` equals
    /// [`PrefixTrie::longest_match`].
    pub fn longest_match_upto(&self, addr: u32, max_len: u8) -> Option<(Prefix, &V)> {
        let mut idx = 0usize;
        let mut best: Option<(Prefix, &V)> = None;
        for depth in 0..=max_len.min(32) {
            if let Some(v) = self.nodes[idx].value.as_ref() {
                best = Some((Prefix::new_unchecked_masked(addr, depth), v));
            }
            if depth == 32 {
                break;
            }
            let bit = ((addr >> (31 - depth)) & 1) as usize;
            let next = self.nodes[idx].children[bit];
            if next == NO_NODE {
                break;
            }
            idx = next as usize;
        }
        best
    }

    /// All stored prefixes *strictly less specific* than `prefix` that
    /// cover it, from least to most specific — the candidate delegators
    /// for a route.
    pub fn covering(&self, prefix: &Prefix) -> Vec<(Prefix, &V)> {
        let mut out = Vec::new();
        let mut idx = 0usize;
        let addr = prefix.network();
        for depth in 0..prefix.len() {
            if let Some(v) = self.nodes[idx].value.as_ref() {
                out.push((Prefix::new_unchecked_masked(addr, depth), v));
            }
            let bit = ((addr >> (31 - depth)) & 1) as usize;
            let next = self.nodes[idx].children[bit];
            if next == NO_NODE {
                return out;
            }
            idx = next as usize;
        }
        out
    }

    /// The most specific stored prefix strictly covering `prefix`,
    /// i.e. its nearest ancestor in routing terms.
    pub fn nearest_ancestor(&self, prefix: &Prefix) -> Option<(Prefix, &V)> {
        self.covering(prefix).into_iter().last()
    }

    /// All stored prefixes covered by `prefix` (including `prefix`
    /// itself if stored), in sorted order — the candidate delegatee
    /// routes under an allocation.
    pub fn covered(&self, prefix: &Prefix) -> Vec<(Prefix, &V)> {
        let mut out = Vec::new();
        if let Some(idx) = self.descend(prefix) {
            self.walk(idx, *prefix, &mut |p, v| out.push((p, v)));
        }
        out
    }

    fn walk<'a>(&'a self, idx: usize, prefix: Prefix, f: &mut impl FnMut(Prefix, &'a V)) {
        if let Some(v) = self.nodes[idx].value.as_ref() {
            f(prefix, v);
        }
        if prefix.len() == 32 {
            return;
        }
        let (l, r) = prefix.children().expect("len < 32");
        let lc = self.nodes[idx].children[0];
        if lc != NO_NODE {
            self.walk(lc as usize, l, f);
        }
        let rc = self.nodes[idx].children[1];
        if rc != NO_NODE {
            self.walk(rc as usize, r, f);
        }
    }

    /// Iterate all `(prefix, value)` pairs in sorted order.
    pub fn iter(&self) -> Vec<(Prefix, &V)> {
        self.covered(&Prefix::DEFAULT)
    }

    /// Visit all `(prefix, value)` pairs in sorted order without
    /// materializing a Vec.
    pub fn for_each<'a>(&'a self, mut f: impl FnMut(Prefix, &'a V)) {
        self.walk(0, Prefix::DEFAULT, &mut f);
    }
}

impl<V: fmt::Debug> fmt::Debug for PrefixTrie<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map()
            .entries(self.iter().into_iter().map(|(p, v)| (p.to_string(), v)))
            .finish()
    }
}

impl<V> FromIterator<(Prefix, V)> for PrefixTrie<V> {
    fn from_iter<T: IntoIterator<Item = (Prefix, V)>>(iter: T) -> Self {
        let mut t = PrefixTrie::new();
        for (p, v) in iter {
            t.insert(p, v);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefix::pfx;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    fn sample() -> PrefixTrie<&'static str> {
        let mut t = PrefixTrie::new();
        t.insert(pfx("10.0.0.0/8"), "eight");
        t.insert(pfx("10.0.0.0/16"), "sixteen");
        t.insert(pfx("10.0.1.0/24"), "twentyfour");
        t.insert(pfx("192.0.2.0/24"), "doc");
        t
    }

    #[test]
    fn insert_get_remove() {
        let mut t = sample();
        assert_eq!(t.len(), 4);
        assert_eq!(t.get(&pfx("10.0.0.0/16")), Some(&"sixteen"));
        assert_eq!(t.get(&pfx("10.0.0.0/15")), None);
        assert_eq!(t.insert(pfx("10.0.0.0/16"), "replaced"), Some("sixteen"));
        assert_eq!(t.len(), 4);
        assert_eq!(t.remove(&pfx("10.0.0.0/16")), Some("replaced"));
        assert_eq!(t.remove(&pfx("10.0.0.0/16")), None);
        assert_eq!(t.len(), 3);
        assert!(!t.contains(&pfx("10.0.0.0/16")));
        // Deeper entries survive removal of the middle node.
        assert_eq!(t.get(&pfx("10.0.1.0/24")), Some(&"twentyfour"));
    }

    #[test]
    fn longest_match_basics() {
        let t = sample();
        let (p, v) = t.longest_match(crate::parse_ipv4("10.0.1.77").unwrap()).unwrap();
        assert_eq!((p, *v), (pfx("10.0.1.0/24"), "twentyfour"));
        let (p, v) = t.longest_match(crate::parse_ipv4("10.0.2.1").unwrap()).unwrap();
        assert_eq!((p, *v), (pfx("10.0.0.0/16"), "sixteen"));
        let (p, v) = t.longest_match(crate::parse_ipv4("10.9.9.9").unwrap()).unwrap();
        assert_eq!((p, *v), (pfx("10.0.0.0/8"), "eight"));
        assert!(t.longest_match(crate::parse_ipv4("11.0.0.1").unwrap()).is_none());
    }

    #[test]
    fn longest_match_upto_limits_depth() {
        let t = sample();
        let addr = crate::parse_ipv4("10.0.1.77").unwrap();
        let (p, _) = t.longest_match_upto(addr, 16).unwrap();
        assert_eq!(p, pfx("10.0.0.0/16"));
        let (p, _) = t.longest_match_upto(addr, 8).unwrap();
        assert_eq!(p, pfx("10.0.0.0/8"));
        assert!(t.longest_match_upto(addr, 7).is_none());
    }

    #[test]
    fn default_route_matches_all() {
        let mut t = PrefixTrie::new();
        t.insert(Prefix::DEFAULT, 0u8);
        assert_eq!(t.longest_match(0).unwrap().0, Prefix::DEFAULT);
        assert_eq!(t.longest_match(u32::MAX).unwrap().0, Prefix::DEFAULT);
    }

    #[test]
    fn default_route_edge_cases() {
        let mut t = PrefixTrie::new();
        assert_eq!(t.insert(Prefix::DEFAULT, "v0"), None);
        assert_eq!(t.len(), 1);
        // Duplicate insert replaces the value without growing the trie.
        assert_eq!(t.insert(Prefix::DEFAULT, "v1"), Some("v0"));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&Prefix::DEFAULT), Some(&"v1"));
        // Nothing is strictly less specific than /0.
        assert!(t.covering(&Prefix::DEFAULT).is_empty());
        assert!(t.nearest_ancestor(&Prefix::DEFAULT).is_none());
        // /0 strictly covers every other prefix.
        t.insert(pfx("128.0.0.0/1"), "half");
        let cov: Vec<Prefix> = t
            .covering(&pfx("128.0.0.0/1"))
            .into_iter()
            .map(|(p, _)| p)
            .collect();
        assert_eq!(cov, vec![Prefix::DEFAULT]);
        // covered(/0) enumerates the whole trie, /0 first.
        let all: Vec<Prefix> = t.covered(&Prefix::DEFAULT).into_iter().map(|(p, _)| p).collect();
        assert_eq!(all, vec![Prefix::DEFAULT, pfx("128.0.0.0/1")]);
        // Removing /0 leaves deeper entries intact.
        assert_eq!(t.remove(&Prefix::DEFAULT), Some("v1"));
        assert_eq!(t.remove(&Prefix::DEFAULT), None);
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&pfx("128.0.0.0/1")), Some(&"half"));
    }

    #[test]
    fn duplicate_inserts_keep_len_consistent() {
        let mut t = PrefixTrie::new();
        for round in 0..3 {
            t.insert(pfx("10.0.0.0/8"), round);
            t.insert(pfx("10.0.0.0/16"), round);
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(&pfx("10.0.0.0/8")), Some(&2));
        // Remove-then-reinsert restores the count.
        assert_eq!(t.remove(&pfx("10.0.0.0/8")), Some(2));
        assert_eq!(t.len(), 1);
        assert_eq!(t.insert(pfx("10.0.0.0/8"), 9), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn covering_and_covered() {
        let t = sample();
        let cov = t.covering(&pfx("10.0.1.0/24"));
        let cov: Vec<Prefix> = cov.into_iter().map(|(p, _)| p).collect();
        assert_eq!(cov, vec![pfx("10.0.0.0/8"), pfx("10.0.0.0/16")]);
        assert_eq!(
            t.nearest_ancestor(&pfx("10.0.1.0/24")).unwrap().0,
            pfx("10.0.0.0/16")
        );

        let under = t.covered(&pfx("10.0.0.0/8"));
        let under: Vec<Prefix> = under.into_iter().map(|(p, _)| p).collect();
        assert_eq!(
            under,
            vec![pfx("10.0.0.0/8"), pfx("10.0.0.0/16"), pfx("10.0.1.0/24")]
        );
        // Covered includes the prefix itself only when stored.
        assert!(t.covered(&pfx("10.0.0.0/9")).iter().all(|(p, _)| *p != pfx("10.0.0.0/9")));
    }

    #[test]
    fn iteration_sorted() {
        let t = sample();
        let all: Vec<Prefix> = t.iter().into_iter().map(|(p, _)| p).collect();
        let mut sorted = all.clone();
        sorted.sort();
        assert_eq!(all, sorted);
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn slash32_entries() {
        let mut t = PrefixTrie::new();
        t.insert(pfx("1.2.3.4/32"), ());
        assert!(t.contains(&pfx("1.2.3.4/32")));
        assert_eq!(t.longest_match(crate::parse_ipv4("1.2.3.4").unwrap()).unwrap().0, pfx("1.2.3.4/32"));
        assert!(t.longest_match(crate::parse_ipv4("1.2.3.5").unwrap()).is_none());
    }

    fn arbitrary_prefix() -> impl Strategy<Value = Prefix> {
        (any::<u32>(), 0u8..=32).prop_map(|(n, l)| Prefix::new_unchecked_masked(n, l))
    }

    proptest! {
        #[test]
        fn prop_matches_btreemap_reference(
            entries in proptest::collection::vec((arbitrary_prefix(), any::<u16>()), 0..60),
            probes in proptest::collection::vec(any::<u32>(), 0..20),
        ) {
            let mut reference: BTreeMap<Prefix, u16> = BTreeMap::new();
            let mut trie = PrefixTrie::new();
            for (p, v) in &entries {
                reference.insert(*p, *v);
                trie.insert(*p, *v);
            }
            prop_assert_eq!(trie.len(), reference.len());

            // Exact gets agree.
            for (p, v) in &reference {
                prop_assert_eq!(trie.get(p), Some(v));
            }

            // LPM agrees with a linear scan.
            for addr in probes {
                let expect = reference
                    .iter()
                    .filter(|(p, _)| p.contains_address(addr))
                    .max_by_key(|(p, _)| p.len())
                    .map(|(p, v)| (*p, *v));
                let got = trie.longest_match(addr).map(|(p, v)| (p, *v));
                prop_assert_eq!(got, expect);
            }

            // Iteration is sorted and complete.
            let got: Vec<(Prefix, u16)> = trie.iter().into_iter().map(|(p, v)| (p, *v)).collect();
            let expect: Vec<(Prefix, u16)> = reference.iter().map(|(p, v)| (*p, *v)).collect();
            prop_assert_eq!(got, expect);
        }

        #[test]
        fn prop_covered_covering_duality(
            entries in proptest::collection::vec(arbitrary_prefix(), 1..40),
            q in arbitrary_prefix(),
        ) {
            let trie: PrefixTrie<()> = entries.iter().map(|p| (*p, ())).collect();
            let covered: Vec<Prefix> = trie.covered(&q).into_iter().map(|(p, _)| p).collect();
            let covering: Vec<Prefix> = trie.covering(&q).into_iter().map(|(p, _)| p).collect();
            for p in &entries {
                let in_covered = q.covers(p);
                let in_covering = p.covers_strictly(&q);
                prop_assert_eq!(covered.contains(p), in_covered);
                prop_assert_eq!(covering.contains(p), in_covering);
            }
        }
    }
}
