//! Autonomous-system numbers and BGP origin representations.

use crate::error::NetTypesError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// An autonomous-system number (32-bit, RFC 6793).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Asn(pub u32);

impl Asn {
    /// AS 0 — reserved, must never originate routes (RFC 7607).
    pub const ZERO: Asn = Asn(0);
    /// AS 23456 — AS_TRANS (RFC 6793).
    pub const TRANS: Asn = Asn(23456);
    /// AS 65535 — reserved (RFC 7300).
    pub const LAST_16BIT: Asn = Asn(65535);
    /// AS 4294967295 — reserved (RFC 7300).
    pub const LAST_32BIT: Asn = Asn(u32::MAX);

    /// Whether this ASN is reserved by IANA and must not appear in a
    /// public AS path (private-use ranges, documentation ranges,
    /// AS_TRANS, AS 0, last ASNs).
    ///
    /// Mirrors the IANA "Autonomous System (AS) Numbers" registry
    /// special-purpose entries the paper sanitizes against.
    pub fn is_reserved(&self) -> bool {
        match self.0 {
            0 => true,                          // RFC 7607
            23456 => true,                      // AS_TRANS, RFC 6793
            64496..=64511 => true,              // documentation, RFC 5398
            64512..=65534 => true,              // private use, RFC 6996
            65535 => true,                      // RFC 7300
            65536..=65551 => true,              // documentation, RFC 5398
            4200000000..=4294967294 => true,    // private use, RFC 6996
            4294967295 => true,                 // RFC 7300
            _ => false,
        }
    }

    /// Whether this ASN may legitimately originate routes in the public
    /// routing system.
    pub fn is_routable(&self) -> bool {
        !self.is_reserved()
    }
}

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl fmt::Debug for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl FromStr for Asn {
    type Err = NetTypesError;

    /// Accepts `AS1234`, `as1234` or a bare number.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let digits = s
            .strip_prefix("AS")
            .or_else(|| s.strip_prefix("as"))
            .unwrap_or(s);
        digits
            .parse::<u32>()
            .map(Asn)
            .map_err(|_| NetTypesError::InvalidAsn(s.to_string()))
    }
}

impl From<u32> for Asn {
    fn from(v: u32) -> Self {
        Asn(v)
    }
}

/// The origin of a BGP route as seen at a monitor.
///
/// The delegation-inference algorithm must discard prefixes originated
/// by an `AS_SET` or by multiple distinct ASes (MOAS); representing the
/// origin exactly keeps that logic honest.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Origin {
    /// A single origin AS — the normal case.
    Single(Asn),
    /// An AS_SET origin (deprecated aggregation artifact, RFC 6472).
    Set(Vec<Asn>),
}

impl Origin {
    /// The single origin AS, if this is not an AS_SET.
    pub fn as_single(&self) -> Option<Asn> {
        match self {
            Origin::Single(a) => Some(*a),
            Origin::Set(_) => None,
        }
    }

    /// Whether the origin is an AS_SET.
    pub fn is_set(&self) -> bool {
        matches!(self, Origin::Set(_))
    }

    /// All ASNs involved in the origin.
    pub fn asns(&self) -> Vec<Asn> {
        match self {
            Origin::Single(a) => vec![*a],
            Origin::Set(v) => v.clone(),
        }
    }
}

impl fmt::Display for Origin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Origin::Single(a) => write!(f, "{a}"),
            Origin::Set(v) => {
                write!(f, "{{")?;
                for (i, a) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}", a.0)?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl From<Asn> for Origin {
    fn from(a: Asn) -> Self {
        Origin::Single(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_forms() {
        assert_eq!("AS3320".parse::<Asn>().unwrap(), Asn(3320));
        assert_eq!("as3320".parse::<Asn>().unwrap(), Asn(3320));
        assert_eq!("3320".parse::<Asn>().unwrap(), Asn(3320));
        assert!("ASX".parse::<Asn>().is_err());
        assert!("".parse::<Asn>().is_err());
        assert!("AS-1".parse::<Asn>().is_err());
    }

    #[test]
    fn reserved_ranges() {
        assert!(Asn::ZERO.is_reserved());
        assert!(Asn::TRANS.is_reserved());
        assert!(Asn(64512).is_reserved());
        assert!(Asn(65534).is_reserved());
        assert!(Asn(65535).is_reserved());
        assert!(Asn(64496).is_reserved());
        assert!(Asn(65536).is_reserved());
        assert!(Asn(65551).is_reserved());
        assert!(Asn(4200000000).is_reserved());
        assert!(Asn(u32::MAX).is_reserved());
        // Ordinary public ASNs.
        assert!(Asn(3320).is_routable());
        assert!(Asn(65552).is_routable());
        assert!(Asn(174).is_routable());
        assert!(Asn(4199999999).is_routable());
    }

    #[test]
    fn origin_accessors() {
        let s = Origin::Single(Asn(1));
        assert_eq!(s.as_single(), Some(Asn(1)));
        assert!(!s.is_set());
        let set = Origin::Set(vec![Asn(1), Asn(2)]);
        assert_eq!(set.as_single(), None);
        assert!(set.is_set());
        assert_eq!(set.asns(), vec![Asn(1), Asn(2)]);
        assert_eq!(set.to_string(), "{1,2}");
        assert_eq!(s.to_string(), "AS1");
    }
}
