//! An aggregating set of IPv4 prefixes.
//!
//! [`PrefixSet`] answers the question every market-sizing analysis in
//! the paper reduces to: *how many unique addresses does this pile of
//! (possibly overlapping, possibly adjacent) prefixes cover?* It keeps
//! a canonical disjoint-interval representation, so membership,
//! address counting and set algebra are exact regardless of overlap.

use crate::prefix::Prefix;
use crate::range::IpRange;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A set of IPv4 addresses represented as sorted, disjoint,
/// non-adjacent inclusive intervals.
#[derive(Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefixSet {
    // Invariant: sorted by start; gaps of at least one address between
    // consecutive intervals.
    intervals: Vec<(u32, u32)>,
}

impl PrefixSet {
    /// Create an empty set.
    pub fn new() -> Self {
        PrefixSet::default()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// Number of disjoint intervals in the canonical representation.
    pub fn num_intervals(&self) -> usize {
        self.intervals.len()
    }

    /// Number of unique addresses covered.
    pub fn num_addresses(&self) -> u64 {
        self.intervals
            .iter()
            .map(|&(s, e)| (e - s) as u64 + 1)
            .sum()
    }

    /// Insert all addresses of `prefix`.
    pub fn insert_prefix(&mut self, prefix: Prefix) {
        self.insert_range(IpRange::from_prefix(prefix));
    }

    /// Insert all addresses of `range`, merging with any overlapping or
    /// adjacent intervals to preserve the canonical representation.
    pub fn insert_range(&mut self, range: IpRange) {
        let (mut s, mut e) = (range.start(), range.end());
        // First interval whose end reaches the merge zone [s-1, ...].
        let lower = s.saturating_sub(1);
        let i0 = self.intervals.partition_point(|&(_, ie)| ie < lower);
        let mut i1 = i0;
        while i1 < self.intervals.len() {
            let (is, ie) = self.intervals[i1];
            let upper = e.saturating_add(1);
            if is > upper {
                break;
            }
            s = s.min(is);
            e = e.max(ie);
            i1 += 1;
        }
        self.intervals.splice(i0..i1, std::iter::once((s, e)));
    }

    /// Whether `addr` is in the set.
    pub fn contains_address(&self, addr: u32) -> bool {
        let idx = self.intervals.partition_point(|&(_, e)| e < addr);
        idx < self.intervals.len() && self.intervals[idx].0 <= addr
    }

    /// Whether the whole `prefix` is covered by the set.
    pub fn covers_prefix(&self, prefix: &Prefix) -> bool {
        let s = prefix.network();
        let e = prefix.last_address();
        let idx = self.intervals.partition_point(|&(_, ie)| ie < s);
        idx < self.intervals.len() && self.intervals[idx].0 <= s && self.intervals[idx].1 >= e
    }

    /// Number of addresses shared with `other`.
    pub fn intersection_size(&self, other: &PrefixSet) -> u64 {
        let mut total = 0u64;
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.intervals.len() && j < other.intervals.len() {
            let (as_, ae) = self.intervals[i];
            let (bs, be) = other.intervals[j];
            let s = as_.max(bs);
            let e = ae.min(be);
            if s <= e {
                total += (e - s) as u64 + 1;
            }
            if ae < be {
                i += 1;
            } else {
                j += 1;
            }
        }
        total
    }

    /// The fraction of `self`'s addresses also present in `other`
    /// (0.0 for an empty `self`). This is the "BGP-delegations cover
    /// X % of the RDAP-delegated IPs" statistic from §4 of the paper.
    pub fn coverage_by(&self, other: &PrefixSet) -> f64 {
        let own = self.num_addresses();
        if own == 0 {
            return 0.0;
        }
        self.intersection_size(other) as f64 / own as f64
    }

    /// Union with another set.
    pub fn union(&self, other: &PrefixSet) -> PrefixSet {
        let mut out = self.clone();
        for &(s, e) in &other.intervals {
            out.insert_range(IpRange::new(s, e).expect("canonical interval"));
        }
        out
    }

    /// The canonical intervals (sorted, disjoint, non-adjacent).
    pub fn intervals(&self) -> impl Iterator<Item = IpRange> + '_ {
        self.intervals
            .iter()
            .map(|&(s, e)| IpRange::new(s, e).expect("canonical interval"))
    }

    /// The minimal CIDR decomposition of the set.
    pub fn to_cidrs(&self) -> Vec<Prefix> {
        self.intervals()
            .flat_map(|r| r.to_cidrs())
            .collect()
    }
}

impl fmt::Debug for PrefixSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list()
            .entries(self.intervals().map(|r| r.to_string()))
            .finish()
    }
}

impl FromIterator<Prefix> for PrefixSet {
    fn from_iter<T: IntoIterator<Item = Prefix>>(iter: T) -> Self {
        let mut s = PrefixSet::new();
        for p in iter {
            s.insert_prefix(p);
        }
        s
    }
}

impl FromIterator<IpRange> for PrefixSet {
    fn from_iter<T: IntoIterator<Item = IpRange>>(iter: T) -> Self {
        let mut s = PrefixSet::new();
        for r in iter {
            s.insert_range(r);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefix::pfx;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    #[test]
    fn dedup_overlaps() {
        let s: PrefixSet = [pfx("10.0.0.0/8"), pfx("10.1.0.0/16"), pfx("10.0.0.0/24")]
            .into_iter()
            .collect();
        assert_eq!(s.num_addresses(), 1 << 24);
        assert_eq!(s.num_intervals(), 1);
    }

    #[test]
    fn merges_adjacent() {
        let s: PrefixSet = [pfx("10.0.0.0/25"), pfx("10.0.0.128/25")].into_iter().collect();
        assert_eq!(s.num_intervals(), 1);
        assert_eq!(s.to_cidrs(), vec![pfx("10.0.0.0/24")]);
    }

    #[test]
    fn keeps_gaps() {
        let s: PrefixSet = [pfx("10.0.0.0/24"), pfx("10.0.2.0/24")].into_iter().collect();
        assert_eq!(s.num_intervals(), 2);
        assert_eq!(s.num_addresses(), 512);
        assert!(!s.contains_address(crate::parse_ipv4("10.0.1.0").unwrap()));
        assert!(s.contains_address(crate::parse_ipv4("10.0.2.255").unwrap()));
    }

    #[test]
    fn covers_prefix_check() {
        let s: PrefixSet = [pfx("10.0.0.0/24"), pfx("10.0.1.0/24")].into_iter().collect();
        assert!(s.covers_prefix(&pfx("10.0.0.0/23")));
        assert!(s.covers_prefix(&pfx("10.0.1.128/25")));
        assert!(!s.covers_prefix(&pfx("10.0.0.0/22")));
    }

    #[test]
    fn intersection_and_coverage() {
        let a: PrefixSet = [pfx("10.0.0.0/23")].into_iter().collect(); // 512
        let b: PrefixSet = [pfx("10.0.1.0/24"), pfx("10.0.2.0/24")].into_iter().collect();
        assert_eq!(a.intersection_size(&b), 256);
        assert!((a.coverage_by(&b) - 0.5).abs() < 1e-12);
        assert!((b.coverage_by(&a) - 0.5).abs() < 1e-12);
        let empty = PrefixSet::new();
        assert_eq!(empty.coverage_by(&a), 0.0);
        assert_eq!(a.intersection_size(&empty), 0);
    }

    #[test]
    fn whole_space_boundaries() {
        let mut s = PrefixSet::new();
        s.insert_prefix(pfx("0.0.0.0/1"));
        s.insert_prefix(pfx("128.0.0.0/1"));
        assert_eq!(s.num_intervals(), 1);
        assert_eq!(s.num_addresses(), 1u64 << 32);
        assert!(s.contains_address(u32::MAX));
        assert!(s.covers_prefix(&Prefix::DEFAULT));
    }

    #[test]
    fn union_counts() {
        let a: PrefixSet = [pfx("10.0.0.0/24")].into_iter().collect();
        let b: PrefixSet = [pfx("10.0.0.128/25"), pfx("192.0.2.0/24")].into_iter().collect();
        let u = a.union(&b);
        assert_eq!(u.num_addresses(), 512);
        assert_eq!(u.num_intervals(), 2);
    }

    proptest! {
        #[test]
        fn prop_matches_address_set_reference(
            prefixes in proptest::collection::vec(
                // Confine everything to 0.0.0.0/10 so the brute-force
                // reference set stays small.
                (0u32..(1 << 22), 22u8..=32).prop_map(|(n, l)| {
                    Prefix::new_unchecked_masked(n, l)
                }),
                0..20
            ),
            probes in proptest::collection::vec(0u32..(1 << 22), 0..30),
        ) {
            let set: PrefixSet = prefixes.iter().copied().collect();
            let mut reference: BTreeSet<u32> = BTreeSet::new();
            for p in &prefixes {
                for a in p.network()..=p.last_address() {
                    reference.insert(a);
                    if a == u32::MAX { break; }
                }
            }
            prop_assert_eq!(set.num_addresses(), reference.len() as u64);
            for a in probes {
                prop_assert_eq!(set.contains_address(a), reference.contains(&a));
            }
            // Canonical form: disjoint and non-adjacent.
            let iv: Vec<_> = set.intervals().collect();
            for w in iv.windows(2) {
                prop_assert!(w[0].end() < u32::MAX && w[0].end() + 1 < w[1].start());
            }
        }

        #[test]
        fn prop_cidr_decomposition_roundtrip(
            prefixes in proptest::collection::vec(
                (any::<u32>(), 8u8..=32).prop_map(|(n, l)| Prefix::new_unchecked_masked(n, l)),
                0..15
            ),
        ) {
            let set: PrefixSet = prefixes.iter().copied().collect();
            let rebuilt: PrefixSet = set.to_cidrs().into_iter().collect();
            prop_assert_eq!(&rebuilt, &set);
            prop_assert_eq!(rebuilt.num_addresses(), set.num_addresses());
        }

        #[test]
        fn prop_intersection_commutes(
            a in proptest::collection::vec((any::<u32>(), 8u8..=28).prop_map(|(n, l)| Prefix::new_unchecked_masked(n, l)), 0..10),
            b in proptest::collection::vec((any::<u32>(), 8u8..=28).prop_map(|(n, l)| Prefix::new_unchecked_masked(n, l)), 0..10),
        ) {
            let sa: PrefixSet = a.into_iter().collect();
            let sb: PrefixSet = b.into_iter().collect();
            prop_assert_eq!(sa.intersection_size(&sb), sb.intersection_size(&sa));
            let u = sa.union(&sb);
            // |A ∪ B| = |A| + |B| - |A ∩ B|
            prop_assert_eq!(
                u.num_addresses(),
                sa.num_addresses() + sb.num_addresses() - sa.intersection_size(&sb)
            );
        }
    }
}
