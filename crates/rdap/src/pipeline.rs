//! The §4 RDAP-delegation extraction pipeline.
//!
//! Reproduces the paper's procedure for the RIPE region:
//!
//! 1. select all `inetnum` objects with delegation-related types
//!    (`SUB-ALLOCATED PA`, `ASSIGNED PA`) from the WHOIS snapshot,
//! 2. **ignore all blocks smaller than a /24** (91.4 % of the
//!    `ASSIGNED PA` entries) to minimise load on the RDAP service,
//! 3. query the RDAP service for each remaining block to learn its
//!    `parentHandle`,
//! 4. remove intra-organization delegations (child has the same
//!    registrant or administrator as the parent).
//!
//! The result is the set of *RDAP-delegations* compared against
//! BGP-delegations in the paper's §4.

use crate::database::WhoisDb;
use crate::server::{RdapError, RdapServer};
use nettypes::prefix::Prefix;
use nettypes::range::IpRange;
use nettypes::set::PrefixSet;
use serde::{Deserialize, Serialize};

/// Pipeline knobs.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// Minimum block size in addresses (paper: a /24, 256 addresses).
    pub min_block_addresses: u64,
    /// Max RDAP queries to issue per window before pausing; `None`
    /// issues everything in one window.
    pub respect_rate_limit: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            min_block_addresses: 256,
            respect_rate_limit: true,
        }
    }
}

/// One extracted delegation.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RdapDelegation {
    /// The delegated (child) range.
    pub child: IpRange,
    /// The child's registrant org handle.
    pub child_org: String,
    /// Parent handle as reported by RDAP.
    pub parent_handle: String,
    /// The parent's registrant org handle.
    pub parent_org: String,
}

/// Pipeline accounting, mirroring the numbers §4 reports.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineStats {
    /// Delegation-related objects found in the snapshot.
    pub candidate_objects: usize,
    /// Of those, objects smaller than the /24 threshold (skipped).
    pub skipped_small: usize,
    /// RDAP queries issued.
    pub queries_issued: usize,
    /// Queries answered 404 (object vanished between snapshot and
    /// query, or filler noise).
    pub not_found: usize,
    /// Rate-limit pauses taken.
    pub rate_limit_pauses: usize,
    /// Delegations dropped as intra-organization.
    pub dropped_intra_org: usize,
    /// Final delegation count.
    pub delegations: usize,
}

/// Run the extraction against a WHOIS snapshot (the query input space)
/// and an RDAP service.
///
/// The `windows` counter in the stats records how often the pipeline
/// had to pause for the rate limiter; the pipeline always completes.
pub fn extract_delegations(
    snapshot: &WhoisDb,
    server: &RdapServer,
    config: &PipelineConfig,
) -> (Vec<RdapDelegation>, PipelineStats) {
    let mut stats = PipelineStats::default();
    let mut out = Vec::new();

    // Resolve org/admin handles of parents via a second query only if
    // needed; here the parent object lives in the same snapshot, so we
    // look it up by handle locally (the paper similarly uses its local
    // snapshot for parent attributes).
    let parent_by_handle = |handle: &str| {
        snapshot
            .objects()
            .iter()
            .find(|o| o.handle() == handle)
    };

    for obj in snapshot.objects() {
        if !obj.status.is_delegation_related() {
            continue;
        }
        stats.candidate_objects += 1;
        if obj.num_addresses() < config.min_block_addresses {
            stats.skipped_small += 1;
            continue;
        }
        // Query RDAP, pausing on 429s.
        let resp = loop {
            stats.queries_issued += 1;
            match server.query(obj.range) {
                Ok(r) => break Some(r),
                Err(RdapError::NotFound) => {
                    stats.not_found += 1;
                    break None;
                }
                Err(RdapError::RateLimited) => {
                    if !config.respect_rate_limit {
                        break None;
                    }
                    stats.rate_limit_pauses += 1;
                    server.reset_window(); // "wait for the next window"
                }
            }
        };
        let Some(resp) = resp else { continue };
        let Some(parent_handle) = resp.parent_handle else {
            continue; // top-level object: not a delegation
        };
        let Some(parent) = parent_by_handle(&parent_handle) else {
            continue;
        };
        // Intra-org filter: same registrant or same administrator.
        if parent.org == obj.org || parent.admin_c == obj.admin_c {
            stats.dropped_intra_org += 1;
            continue;
        }
        out.push(RdapDelegation {
            child: obj.range,
            child_org: obj.org.clone(),
            parent_handle,
            parent_org: parent.org.clone(),
        });
    }
    stats.delegations = out.len();
    (out, stats)
}

/// The set of addresses covered by a list of RDAP delegations —
/// the denominator/numerator of the §4 coverage comparison.
pub fn delegated_address_set(delegations: &[RdapDelegation]) -> PrefixSet {
    delegations
        .iter()
        .flat_map(|d| d.child.to_cidrs())
        .collect::<Vec<Prefix>>()
        .into_iter()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::DbBuildConfig;
    use crate::inetnum::{Inetnum, InetnumStatus};
    use bgpsim::scenario::{LeaseWorld, WorldConfig};
    use bgpsim::topology::TopologyConfig;
    use nettypes::date::{date, DateRange};

    fn world() -> LeaseWorld {
        LeaseWorld::generate(&WorldConfig {
            seed: 31,
            span: DateRange::new(date("2018-01-01"), date("2018-06-30")),
            topology: TopologyConfig {
                seed: 31,
                num_tier1: 4,
                num_tier2: 12,
                num_stubs: 100,
                multi_as_org_fraction: 0.15,
            },
            num_allocations: 50,
            initial_active_leases: 150,
            ..Default::default()
        })
    }

    #[test]
    fn recovers_registered_leases() {
        let w = world();
        let as_of = date("2018-04-01");
        let db = WhoisDb::build_from_world(&w, as_of, &DbBuildConfig::default());
        let server = RdapServer::new(db.clone());
        let (delegations, stats) = extract_delegations(&db, &server, &PipelineConfig::default());

        let registered = w.registered_leases_on(as_of).len();
        assert_eq!(
            stats.delegations, registered,
            "pipeline should recover exactly the registered leases; stats: {stats:?}"
        );
        assert_eq!(delegations.len(), registered);
        // Every recovered delegation is a true registered lease.
        for d in &delegations {
            let p = d.child.as_single_prefix().expect("lease blocks are CIDR");
            assert!(
                w.registered_leases_on(as_of).iter().any(|l| l.prefix == p),
                "{p} is not a registered lease"
            );
        }
    }

    #[test]
    fn skips_small_blocks_and_counts_them() {
        let w = world();
        let db = WhoisDb::build_from_world(&w, date("2018-04-01"), &DbBuildConfig::default());
        let server = RdapServer::new(db.clone());
        let (_, stats) = extract_delegations(&db, &server, &PipelineConfig::default());
        assert!(stats.skipped_small > 0);
        // ~91.4 % of candidates are tiny.
        let frac = stats.skipped_small as f64 / stats.candidate_objects as f64;
        assert!((0.85..=0.95).contains(&frac), "tiny fraction {frac}");
        // No RDAP query was spent on them.
        assert_eq!(
            stats.queries_issued - stats.rate_limit_pauses,
            stats.candidate_objects - stats.skipped_small
        );
    }

    #[test]
    fn drops_intra_org_delegations() {
        let mut db = WhoisDb::new();
        let mk = |r: &str, status, org: &str, admin: &str| Inetnum {
            range: r.parse().unwrap(),
            netname: "X".into(),
            status,
            org: org.into(),
            admin_c: admin.into(),
            created: date("2018-01-01"),
        };
        db.insert(mk("10.0.0.0 - 10.0.255.255", InetnumStatus::AllocatedPa, "LIR", "AC-L"));
        // Same registrant — intra-org.
        db.insert(mk("10.0.0.0 - 10.0.0.255", InetnumStatus::AssignedPa, "LIR", "AC-X"));
        // Same admin — intra-org.
        db.insert(mk("10.0.1.0 - 10.0.1.255", InetnumStatus::AssignedPa, "OTHER", "AC-L"));
        // A genuine delegation.
        db.insert(mk("10.0.2.0 - 10.0.2.255", InetnumStatus::AssignedPa, "CUST", "AC-C"));
        let server = RdapServer::new(db.clone());
        let (delegations, stats) = extract_delegations(&db, &server, &PipelineConfig::default());
        assert_eq!(stats.dropped_intra_org, 2);
        assert_eq!(delegations.len(), 1);
        assert_eq!(delegations[0].child_org, "CUST");
        assert_eq!(delegations[0].parent_org, "LIR");
    }

    #[test]
    fn survives_rate_limiting() {
        let w = world();
        let db = WhoisDb::build_from_world(&w, date("2018-04-01"), &DbBuildConfig::default());
        let strict = RdapServer::with_rate_limit(db.clone(), 10);
        let (with_limit, stats) = extract_delegations(&db, &strict, &PipelineConfig::default());
        assert!(stats.rate_limit_pauses > 0, "limit never hit: {stats:?}");
        let relaxed = RdapServer::new(db.clone());
        let (without_limit, _) = extract_delegations(&db, &relaxed, &PipelineConfig::default());
        assert_eq!(with_limit, without_limit, "rate limiting changed results");
    }

    #[test]
    fn delegated_address_set_counts() {
        let d = |r: &str| RdapDelegation {
            child: r.parse().unwrap(),
            child_org: "C".into(),
            parent_handle: "P".into(),
            parent_org: "P".into(),
        };
        let set = delegated_address_set(&[
            d("10.0.0.0 - 10.0.0.255"),
            d("10.0.1.0 - 10.0.1.255"),
            d("10.0.0.0 - 10.0.0.255"), // duplicate must not double-count
        ]);
        assert_eq!(set.num_addresses(), 512);
    }
}
