//! The in-memory WHOIS database, buildable from a ground-truth world.
//!
//! The builder reproduces the empirical structure the paper reports
//! for the RIPE database in June 2020: a small number of
//! `SUB-ALLOCATED PA` objects (~4.5 k), millions of `ASSIGNED PA`
//! objects of which **91.4 % cover less than a /24**, and intra-org
//! assignments (same registrant/admin as the parent) that the pipeline
//! must filter out.

use crate::inetnum::{Inetnum, InetnumStatus};
use bgpsim::scenario::LeaseWorld;
use nettypes::date::Date;
use nettypes::range::IpRange;
use rand::prelude::*;
use rand_pcg::Pcg64Mcg;
use serde::{Deserialize, Serialize};

/// Controls the synthetic database shape.
#[derive(Clone, Debug)]
pub struct DbBuildConfig {
    /// RNG seed for the filler objects.
    pub seed: u64,
    /// Fraction of `ASSIGNED PA` objects that cover less than a /24
    /// (paper: 91.4 %).
    pub tiny_assignment_fraction: f64,
    /// Fraction of ≥/24 assignments that are intra-org (same
    /// registrant as the parent allocation), to be filtered by the
    /// pipeline.
    pub intra_org_fraction: f64,
    /// Fraction of registered leases recorded as `SUB-ALLOCATED PA`
    /// rather than `ASSIGNED PA`.
    pub sub_allocated_fraction: f64,
}

impl Default for DbBuildConfig {
    fn default() -> Self {
        DbBuildConfig {
            seed: 4242,
            tiny_assignment_fraction: 0.914,
            intra_org_fraction: 0.10,
            sub_allocated_fraction: 0.05,
        }
    }
}

/// The WHOIS database: a flat object store with covering-object
/// resolution.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct WhoisDb {
    objects: Vec<Inetnum>,
}

impl WhoisDb {
    /// An empty database.
    pub fn new() -> Self {
        WhoisDb::default()
    }

    /// Add an object.
    pub fn insert(&mut self, obj: Inetnum) {
        self.objects.push(obj);
    }

    /// All objects.
    pub fn objects(&self) -> &[Inetnum] {
        &self.objects
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Objects of a given status.
    pub fn of_status(&self, status: InetnumStatus) -> impl Iterator<Item = &Inetnum> {
        self.objects.iter().filter(move |o| o.status == status)
    }

    /// Find the object whose range exactly matches.
    pub fn exact(&self, range: IpRange) -> Option<&Inetnum> {
        self.objects.iter().find(|o| o.range == range)
    }

    /// The *smallest strictly-covering* object for a range — RDAP's
    /// notion of the parent network.
    pub fn parent_of(&self, range: IpRange) -> Option<&Inetnum> {
        self.objects
            .iter()
            .filter(|o| o.range.contains_range(&range) && o.range != range)
            .min_by_key(|o| o.num_addresses())
    }

    /// Build the database for a world snapshot at `as_of`.
    ///
    /// * every allocation becomes `ALLOCATED PA`,
    /// * every registered, active lease becomes `ASSIGNED PA` (or
    ///   `SUB-ALLOCATED PA` with the configured probability),
    /// * filler: tiny (< /24) `ASSIGNED PA` objects inside allocations
    ///   so the `tiny_assignment_fraction` holds,
    /// * noise: intra-org assignments with the parent's registrant.
    pub fn build_from_world(
        world: &LeaseWorld,
        as_of: Date,
        config: &DbBuildConfig,
    ) -> WhoisDb {
        let mut rng = Pcg64Mcg::seed_from_u64(config.seed ^ 0x0DA7_ABA5_0000_0006);
        let mut db = WhoisDb::new();

        for (i, a) in world.allocations.iter().enumerate() {
            db.insert(Inetnum {
                range: IpRange::from_prefix(a.prefix),
                netname: format!("ALLOC-{i}"),
                status: InetnumStatus::AllocatedPa,
                org: a.org.to_string(),
                admin_c: format!("AC-{}", a.org.0),
                created: as_of - 2000,
            });
        }

        // Registered leases — the real delegations the pipeline should
        // recover.
        let mut lease_count = 0usize;
        for l in world.registered_leases_on(as_of) {
            let status = if rng.gen::<f64>() < config.sub_allocated_fraction {
                InetnumStatus::SubAllocatedPa
            } else {
                InetnumStatus::AssignedPa
            };
            db.insert(Inetnum {
                range: IpRange::from_prefix(l.prefix),
                netname: format!("LEASE-{}", l.id),
                status,
                org: l.delegatee_org.to_string(),
                admin_c: format!("AC-{}", l.delegatee_org.0),
                created: l.active.start,
            });
            lease_count += 1;
        }

        // Intra-org ≥/24 assignments: same registrant as the parent.
        // Never placed inside leased space — an assignment under a
        // lease would make the lease (not the allocation) its RDAP
        // parent.
        let leased: Vec<_> = world.leases.iter().map(|l| l.prefix).collect();
        let intra_target = ((lease_count as f64) * config.intra_org_fraction).round() as usize;
        for i in 0..intra_target {
            let a = &world.allocations[rng.gen_range(0..world.allocations.len())];
            // Place in the top half of the allocation (lease carving is
            // bottom-up, so collisions are rare).
            let slash24s = 1u64 << (24 - a.prefix.len() as u64);
            let idx = slash24s - 1 - (i as u64 % (slash24s / 2).max(1));
            let Ok(p) = a.prefix.subprefix(24, idx) else {
                continue;
            };
            if leased.iter().any(|l| l.overlaps(&p)) {
                continue;
            }
            db.insert(Inetnum {
                range: IpRange::from_prefix(p),
                netname: format!("INFRA-{i}"),
                status: InetnumStatus::AssignedPa,
                org: a.org.to_string(),
                admin_c: format!("AC-{}", a.org.0),
                created: as_of - 500,
            });
        }

        // Tiny assignments so that `tiny_assignment_fraction` of all
        // ASSIGNED PA objects are smaller than /24.
        let assigned_ge24 = db
            .of_status(InetnumStatus::AssignedPa)
            .filter(|o| o.at_least_slash24())
            .count();
        let f = config.tiny_assignment_fraction.clamp(0.0, 0.99);
        let tiny_target = ((assigned_ge24 as f64) * f / (1.0 - f)).round() as usize;
        for i in 0..tiny_target {
            let a = &world.allocations[rng.gen_range(0..world.allocations.len())];
            // A /29 somewhere inside the allocation.
            let slash29s = 1u64 << (29 - a.prefix.len() as u64);
            let idx = rng.gen_range(0..slash29s);
            let Ok(p) = a.prefix.subprefix(29, idx) else {
                continue;
            };
            db.insert(Inetnum {
                range: IpRange::from_prefix(p),
                netname: format!("CUST-{i}"),
                status: InetnumStatus::AssignedPa,
                org: format!("ORG-CUST-{}", rng.gen_range(0..100_000u32)),
                admin_c: format!("AC-CUST-{}", rng.gen_range(0..100_000u32)),
                created: as_of - rng.gen_range(1..1500i64),
            });
        }

        db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpsim::scenario::WorldConfig;
    use bgpsim::topology::TopologyConfig;
    use nettypes::date::{date, DateRange};

    fn world() -> LeaseWorld {
        LeaseWorld::generate(&WorldConfig {
            seed: 21,
            span: DateRange::new(date("2018-01-01"), date("2018-06-30")),
            topology: TopologyConfig {
                seed: 21,
                num_tier1: 4,
                num_tier2: 12,
                num_stubs: 100,
                multi_as_org_fraction: 0.15,
            },
            num_allocations: 50,
            initial_active_leases: 200,
            ..Default::default()
        })
    }

    #[test]
    fn parent_resolution_picks_smallest_cover() {
        let mut db = WhoisDb::new();
        let mk = |r: &str, status, org: &str| Inetnum {
            range: r.parse().unwrap(),
            netname: "X".into(),
            status,
            org: org.into(),
            admin_c: "A".into(),
            created: date("2018-01-01"),
        };
        db.insert(mk("10.0.0.0 - 10.255.255.255", InetnumStatus::AllocatedPa, "big"));
        db.insert(mk("10.0.0.0 - 10.0.255.255", InetnumStatus::SubAllocatedPa, "mid"));
        db.insert(mk("10.0.0.0 - 10.0.0.255", InetnumStatus::AssignedPa, "leaf"));
        let child: IpRange = "10.0.0.0 - 10.0.0.255".parse().unwrap();
        let parent = db.parent_of(child).unwrap();
        assert_eq!(parent.org, "mid");
        // Parent of the /16-equivalent is the /8-equivalent.
        let mid: IpRange = "10.0.0.0 - 10.0.255.255".parse().unwrap();
        assert_eq!(db.parent_of(mid).unwrap().org, "big");
        // The top object has no parent.
        let top: IpRange = "10.0.0.0 - 10.255.255.255".parse().unwrap();
        assert!(db.parent_of(top).is_none());
        // Exact lookup works too.
        assert_eq!(db.exact(child).unwrap().org, "leaf");
    }

    #[test]
    fn build_reflects_world() {
        let w = world();
        let as_of = date("2018-04-01");
        let db = WhoisDb::build_from_world(&w, as_of, &DbBuildConfig::default());
        assert_eq!(
            db.of_status(InetnumStatus::AllocatedPa).count(),
            w.allocations.len()
        );
        let registered = w.registered_leases_on(as_of).len();
        let delegation_objs = db
            .objects()
            .iter()
            .filter(|o| o.status.is_delegation_related() && o.netname.starts_with("LEASE-"))
            .count();
        assert_eq!(delegation_objs, registered);
    }

    #[test]
    fn tiny_fraction_matches_paper() {
        let w = world();
        let db = WhoisDb::build_from_world(&w, date("2018-04-01"), &DbBuildConfig::default());
        let assigned: Vec<_> = db.of_status(InetnumStatus::AssignedPa).collect();
        let tiny = assigned.iter().filter(|o| !o.at_least_slash24()).count();
        let frac = tiny as f64 / assigned.len() as f64;
        assert!(
            (0.88..=0.94).contains(&frac),
            "tiny fraction {frac} out of band ({tiny}/{})",
            assigned.len()
        );
    }

    #[test]
    fn lease_objects_have_covering_allocation() {
        let w = world();
        let as_of = date("2018-04-01");
        let db = WhoisDb::build_from_world(&w, as_of, &DbBuildConfig::default());
        for o in db.objects() {
            if o.netname.starts_with("LEASE-") {
                let parent = db.parent_of(o.range).expect("lease has a parent");
                assert_eq!(parent.status, InetnumStatus::AllocatedPa);
                assert_ne!(parent.org, o.org, "lease {} intra-org", o.netname);
            }
        }
    }
}
