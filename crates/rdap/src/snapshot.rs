//! The RIPE-style split-file snapshot text format.
//!
//! RIPE publishes nightly database dumps (`ripe.db.inetnum.gz`) as
//! paragraphs of `attribute: value` lines separated by blank lines.
//! The paper uses those snapshots as the *input space* for RDAP
//! queries, because RDAP itself has no wildcard or range queries.

use crate::inetnum::{Inetnum, InetnumStatus};
use nettypes::date::Date;
use nettypes::range::IpRange;

/// Serialization of a database to the split-file text format.
pub fn to_split_file(objects: &[Inetnum]) -> String {
    let mut out = String::new();
    for o in objects {
        out.push_str(&format!("inetnum:        {}\n", o.range));
        out.push_str(&format!("netname:        {}\n", o.netname));
        out.push_str(&format!("status:         {}\n", o.status));
        out.push_str(&format!("org:            {}\n", o.org));
        out.push_str(&format!("admin-c:        {}\n", o.admin_c));
        out.push_str(&format!("created:        {}\n", o.created));
        out.push_str("source:         SIM\n\n");
    }
    out
}

/// Errors from snapshot parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// A paragraph was missing a mandatory attribute.
    MissingAttribute {
        /// The attribute name.
        attribute: &'static str,
        /// Paragraph index (0-based).
        paragraph: usize,
    },
    /// A value failed to parse.
    BadValue {
        /// The attribute name.
        attribute: &'static str,
        /// The offending value.
        value: String,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::MissingAttribute { attribute, paragraph } => {
                write!(f, "paragraph {paragraph}: missing {attribute}:")
            }
            SnapshotError::BadValue { attribute, value } => {
                write!(f, "bad {attribute}: value {value:?}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Parse a split-file snapshot back into objects. Unknown attributes
/// are ignored (the real dump has many more than we model); comment
/// lines (`%` or `#`) are skipped.
pub fn parse_split_file(text: &str) -> Result<Vec<Inetnum>, SnapshotError> {
    let mut out = Vec::new();
    for (pi, para) in text.split("\n\n").enumerate() {
        let mut range: Option<IpRange> = None;
        let mut netname = None;
        let mut status: Option<InetnumStatus> = None;
        let mut org = None;
        let mut admin_c = None;
        let mut created: Option<Date> = None;
        let mut saw_any = false;
        for line in para.lines() {
            if line.starts_with('%') || line.starts_with('#') || line.trim().is_empty() {
                continue;
            }
            let Some((attr, value)) = line.split_once(':') else {
                continue;
            };
            let value = value.trim();
            saw_any = true;
            match attr.trim() {
                "inetnum" => {
                    range = Some(value.parse().map_err(|_| SnapshotError::BadValue {
                        attribute: "inetnum",
                        value: value.to_string(),
                    })?)
                }
                "netname" => netname = Some(value.to_string()),
                "status" => {
                    status = Some(value.parse().map_err(|_| SnapshotError::BadValue {
                        attribute: "status",
                        value: value.to_string(),
                    })?)
                }
                "org" => org = Some(value.to_string()),
                "admin-c" => admin_c = Some(value.to_string()),
                "created" => {
                    created = Some(value.parse().map_err(|_| SnapshotError::BadValue {
                        attribute: "created",
                        value: value.to_string(),
                    })?)
                }
                _ => {} // unknown attribute: ignore
            }
        }
        if !saw_any {
            continue; // blank trailing paragraph
        }
        let missing = |attribute| SnapshotError::MissingAttribute {
            attribute,
            paragraph: pi,
        };
        out.push(Inetnum {
            range: range.ok_or_else(|| missing("inetnum"))?,
            netname: netname.ok_or_else(|| missing("netname"))?,
            status: status.ok_or_else(|| missing("status"))?,
            org: org.ok_or_else(|| missing("org"))?,
            admin_c: admin_c.ok_or_else(|| missing("admin-c"))?,
            created: created.ok_or_else(|| missing("created"))?,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettypes::date::date;
    use proptest::prelude::*;

    fn sample() -> Vec<Inetnum> {
        vec![
            Inetnum {
                range: "193.0.0.0 - 193.0.7.255".parse().unwrap(),
                netname: "RIPE-NCC".into(),
                status: InetnumStatus::AllocatedPa,
                org: "ORG-00001".into(),
                admin_c: "AC1".into(),
                created: date("2012-01-01"),
            },
            Inetnum {
                range: "193.0.0.0 - 193.0.0.255".parse().unwrap(),
                netname: "LEASE-1".into(),
                status: InetnumStatus::AssignedPa,
                org: "ORG-00002".into(),
                admin_c: "AC2".into(),
                created: date("2019-06-15"),
            },
        ]
    }

    #[test]
    fn roundtrip() {
        let objs = sample();
        let text = to_split_file(&objs);
        let back = parse_split_file(&text).unwrap();
        assert_eq!(back, objs);
    }

    #[test]
    fn ignores_comments_and_unknown_attributes() {
        let text = "\
% RIPE database dump
inetnum:        10.0.0.0 - 10.0.0.255
netname:        N
descr:          some human text
status:         ASSIGNED PA
org:            ORG-1
admin-c:        AC1
mnt-by:         SOME-MNT
created:        2020-01-01
source:         SIM
";
        let objs = parse_split_file(text).unwrap();
        assert_eq!(objs.len(), 1);
        assert_eq!(objs[0].netname, "N");
    }

    #[test]
    fn missing_attribute_is_an_error() {
        let text = "inetnum:        10.0.0.0 - 10.0.0.255\nnetname: N\n";
        let err = parse_split_file(text).unwrap_err();
        assert!(matches!(
            err,
            SnapshotError::MissingAttribute { attribute: "status", .. }
        ));
    }

    #[test]
    fn bad_values_are_errors() {
        let bad_range = "inetnum:        10.0.0.0 -\nnetname: N\nstatus: ASSIGNED PA\norg: O\nadmin-c: A\ncreated: 2020-01-01\n";
        assert!(matches!(
            parse_split_file(bad_range),
            Err(SnapshotError::BadValue { attribute: "inetnum", .. })
        ));
        let bad_status = "inetnum:        10.0.0.0 - 10.0.0.255\nnetname: N\nstatus: NOT-A-STATUS\norg: O\nadmin-c: A\ncreated: 2020-01-01\n";
        assert!(matches!(
            parse_split_file(bad_status),
            Err(SnapshotError::BadValue { attribute: "status", .. })
        ));
    }

    #[test]
    fn empty_input_is_empty() {
        assert_eq!(parse_split_file("").unwrap(), vec![]);
        assert_eq!(parse_split_file("\n\n\n").unwrap(), vec![]);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(
            objs in proptest::collection::vec(
                (any::<u32>(), 0u32..10_000, 0usize..5, "[A-Z][A-Z0-9-]{0,12}", 0i64..20_000)
                    .prop_map(|(start, span, status_idx, name, created)| {
                        let end = start.saturating_add(span);
                        Inetnum {
                            range: IpRange::new(start, end).unwrap(),
                            netname: name.clone(),
                            status: [
                                InetnumStatus::AllocatedPa,
                                InetnumStatus::SubAllocatedPa,
                                InetnumStatus::AssignedPa,
                                InetnumStatus::AssignedPi,
                                InetnumStatus::Legacy,
                            ][status_idx],
                            org: format!("ORG-{name}"),
                            admin_c: format!("AC-{name}"),
                            created: Date::from_days(created),
                        }
                    }),
                0..20
            )
        ) {
            let text = to_split_file(&objs);
            prop_assert_eq!(parse_split_file(&text).unwrap(), objs);
        }
    }
}
