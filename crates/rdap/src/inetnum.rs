//! WHOIS `inetnum` objects.

use nettypes::date::Date;
use nettypes::range::IpRange;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// The RIPE database status hierarchy for IPv4 `inetnum` objects.
///
/// §4 of the paper selects the "delegation-related" types:
/// `SUB-ALLOCATED PA` (space sub-allocated to another organization)
/// and `ASSIGNED PA` (space assigned from an LIR to an end-host).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum InetnumStatus {
    /// Space allocated by the RIR to an LIR.
    AllocatedPa,
    /// Space sub-allocated by an LIR to another organization.
    SubAllocatedPa,
    /// Space assigned by an LIR to an end-host network.
    AssignedPa,
    /// Provider-independent assignment.
    AssignedPi,
    /// Pre-RIR ("legacy") space.
    Legacy,
}

impl InetnumStatus {
    /// The database keyword.
    pub fn keyword(&self) -> &'static str {
        match self {
            InetnumStatus::AllocatedPa => "ALLOCATED PA",
            InetnumStatus::SubAllocatedPa => "SUB-ALLOCATED PA",
            InetnumStatus::AssignedPa => "ASSIGNED PA",
            InetnumStatus::AssignedPi => "ASSIGNED PI",
            InetnumStatus::Legacy => "LEGACY",
        }
    }

    /// Whether the paper's §4 pipeline treats this type as
    /// delegation-related.
    pub fn is_delegation_related(&self) -> bool {
        matches!(self, InetnumStatus::SubAllocatedPa | InetnumStatus::AssignedPa)
    }
}

impl fmt::Display for InetnumStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

impl FromStr for InetnumStatus {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim() {
            "ALLOCATED PA" => Ok(InetnumStatus::AllocatedPa),
            "SUB-ALLOCATED PA" => Ok(InetnumStatus::SubAllocatedPa),
            "ASSIGNED PA" => Ok(InetnumStatus::AssignedPa),
            "ASSIGNED PI" => Ok(InetnumStatus::AssignedPi),
            "LEGACY" => Ok(InetnumStatus::Legacy),
            other => Err(format!("unknown inetnum status: {other:?}")),
        }
    }
}

/// A WHOIS `inetnum` object (the subset of attributes the pipeline
/// touches).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Inetnum {
    /// The covered range (need not align to CIDR).
    pub range: IpRange,
    /// The `netname` attribute.
    pub netname: String,
    /// Database status.
    pub status: InetnumStatus,
    /// Registrant organization handle (`org:`).
    pub org: String,
    /// Administrative contact handle (`admin-c:`).
    pub admin_c: String,
    /// Object creation date.
    pub created: Date,
}

impl Inetnum {
    /// The RDAP object handle for this inetnum — RIR-unique, derived
    /// from the range like real RIPE handles.
    pub fn handle(&self) -> String {
        format!(
            "SIM-NET-{:08X}-{:08X}",
            self.range.start(),
            self.range.end()
        )
    }

    /// Size of the object in addresses.
    pub fn num_addresses(&self) -> u64 {
        self.range.num_addresses()
    }

    /// Whether this object covers at least a /24 (256 addresses) as a
    /// single CIDR-aligned block or larger range — the paper ignores
    /// smaller blocks to limit RDAP load.
    pub fn at_least_slash24(&self) -> bool {
        self.num_addresses() >= 256
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettypes::date::date;

    fn sample() -> Inetnum {
        Inetnum {
            range: "193.0.0.0 - 193.0.0.255".parse().unwrap(),
            netname: "EXAMPLE-NET".into(),
            status: InetnumStatus::AssignedPa,
            org: "ORG-00001".into(),
            admin_c: "AC1-SIM".into(),
            created: date("2019-05-01"),
        }
    }

    #[test]
    fn status_roundtrip() {
        for s in [
            InetnumStatus::AllocatedPa,
            InetnumStatus::SubAllocatedPa,
            InetnumStatus::AssignedPa,
            InetnumStatus::AssignedPi,
            InetnumStatus::Legacy,
        ] {
            assert_eq!(s.keyword().parse::<InetnumStatus>().unwrap(), s);
        }
        assert!("ALLOCATED".parse::<InetnumStatus>().is_err());
    }

    #[test]
    fn delegation_related_types() {
        assert!(InetnumStatus::SubAllocatedPa.is_delegation_related());
        assert!(InetnumStatus::AssignedPa.is_delegation_related());
        assert!(!InetnumStatus::AllocatedPa.is_delegation_related());
        assert!(!InetnumStatus::AssignedPi.is_delegation_related());
        assert!(!InetnumStatus::Legacy.is_delegation_related());
    }

    #[test]
    fn handles_are_unique_per_range() {
        let a = sample();
        let mut b = sample();
        b.range = "193.0.1.0 - 193.0.1.255".parse().unwrap();
        assert_ne!(a.handle(), b.handle());
        assert_eq!(a.handle(), sample().handle());
    }

    #[test]
    fn slash24_threshold() {
        let mut i = sample();
        assert!(i.at_least_slash24());
        i.range = "10.0.0.0 - 10.0.0.127".parse().unwrap();
        assert!(!i.at_least_slash24());
        i.range = "10.0.0.0 - 10.0.1.255".parse().unwrap();
        assert!(i.at_least_slash24());
    }
}
