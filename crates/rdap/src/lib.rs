//! # rdap
//!
//! The registry-database side of the leasing-market measurement (§4 of
//! *When Wells Run Dry*): a WHOIS `inetnum` database, a RIPE-style
//! split-file snapshot codec, an RDAP query service, and the
//! delegation-extraction pipeline that the paper runs against the RIPE
//! region:
//!
//! * [`inetnum`] — `inetnum` objects with the RIPE status hierarchy
//!   (`ALLOCATED PA`, `SUB-ALLOCATED PA`, `ASSIGNED PA`, …),
//! * [`database`] — an in-memory WHOIS database with covering-object
//!   (parent) resolution, buildable from a ground-truth
//!   [`bgpsim::scenario::LeaseWorld`],
//! * [`snapshot`] — the `ripe.db.inetnum` split-file text format,
//! * [`server`] — an RDAP interface returning JSON responses with
//!   `handle` / `parentHandle`, including the operational constraints
//!   the paper works around (no wildcard or range queries, rate
//!   limits),
//! * [`whois`] — the classic port-43 WHOIS text protocol with the
//!   RIPE hierarchy flags (`-L`, `-m`, `-M`, `-x`),
//! * [`pipeline`] — the paper's §4 extraction: select
//!   delegation-related inetnum types from a WHOIS snapshot, ignore
//!   blocks smaller than a /24 (to spare the RDAP service), query RDAP
//!   for the parent, and drop intra-organization delegations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod database;
pub mod inetnum;
pub mod pipeline;
pub mod server;
pub mod snapshot;
pub mod whois;

pub use database::{DbBuildConfig, WhoisDb};
pub use inetnum::{Inetnum, InetnumStatus};
pub use pipeline::{extract_delegations, PipelineConfig, PipelineStats, RdapDelegation};
pub use server::{RdapError, RdapResponse, RdapServer};
pub use whois::{WhoisQuery, WhoisServer};
