//! The RDAP query service.
//!
//! Models the operational interface the paper queries: RFC 7483 JSON
//! responses carrying `handle`, `parentHandle` and entity roles — and
//! the constraints that shape the measurement methodology:
//!
//! * **no wildcard or range queries** — you must already know which
//!   ranges to ask about (hence the WHOIS snapshot as input space),
//! * **rate limiting** — clients that exceed the per-window budget get
//!   `429 Too Many Requests` and must back off.

use crate::database::WhoisDb;
use crate::inetnum::Inetnum;
use nettypes::range::IpRange;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// An RDAP lookup error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RdapError {
    /// No object matches the queried range (HTTP 404).
    NotFound,
    /// The client exceeded the rate limit (HTTP 429); retry after the
    /// window resets.
    RateLimited,
}

impl std::fmt::Display for RdapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RdapError::NotFound => write!(f, "404 object not found"),
            RdapError::RateLimited => write!(f, "429 too many requests"),
        }
    }
}

impl std::error::Error for RdapError {}

/// An RFC 7483-shaped `ip network` response (the fields the pipeline
/// uses).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RdapResponse {
    /// Object class name, always `"ip network"`.
    #[serde(rename = "objectClassName")]
    pub object_class_name: String,
    /// RIR-unique handle of the queried network.
    pub handle: String,
    /// Handle of the covering (parent) network, if any.
    #[serde(rename = "parentHandle", skip_serializing_if = "Option::is_none")]
    pub parent_handle: Option<String>,
    /// Start address (dotted quad).
    #[serde(rename = "startAddress")]
    pub start_address: String,
    /// End address (dotted quad).
    #[serde(rename = "endAddress")]
    pub end_address: String,
    /// The `netname`.
    pub name: String,
    /// Database status keyword.
    pub status: String,
    /// Registrant organization handle.
    pub org: String,
    /// Administrative contact handle.
    pub admin_c: String,
}

impl RdapResponse {
    fn from_object(obj: &Inetnum, parent: Option<&Inetnum>) -> RdapResponse {
        RdapResponse {
            object_class_name: "ip network".into(),
            handle: obj.handle(),
            parent_handle: parent.map(Inetnum::handle),
            start_address: nettypes::fmt_ipv4(obj.range.start()),
            end_address: nettypes::fmt_ipv4(obj.range.end()),
            name: obj.netname.clone(),
            status: obj.status.to_string(),
            org: obj.org.clone(),
            admin_c: obj.admin_c.clone(),
        }
    }
}

impl serde_json::ToJson for RdapResponse {
    fn to_json(&self) -> serde_json::Value {
        let mut v = serde_json::json!({
            "objectClassName": self.object_class_name,
            "handle": self.handle,
            "startAddress": self.start_address,
            "endAddress": self.end_address,
            "name": self.name,
            "status": self.status,
            "org": self.org,
            "admin_c": self.admin_c,
        });
        // parentHandle is skipped entirely when absent (RFC 7483 feeds
        // omit it rather than sending null).
        if let (serde_json::Value::Object(map), Some(parent)) = (&mut v, &self.parent_handle) {
            map.insert("parentHandle".into(), serde_json::json!(parent.as_str()));
        }
        v
    }
}

impl serde_json::FromJson for RdapResponse {
    fn from_json(v: &serde_json::Value) -> Result<Self, serde_json::Error> {
        let field = |name: &str| -> Result<String, serde_json::Error> {
            v[name]
                .as_str()
                .map(str::to_string)
                .ok_or_else(|| serde_json::Error::msg(format!("missing field {name}")))
        };
        Ok(RdapResponse {
            object_class_name: field("objectClassName")?,
            handle: field("handle")?,
            parent_handle: v["parentHandle"].as_str().map(str::to_string),
            start_address: field("startAddress")?,
            end_address: field("endAddress")?,
            name: field("name")?,
            status: field("status")?,
            org: field("org")?,
            admin_c: field("admin_c")?,
        })
    }
}

/// The RDAP service wrapping a WHOIS database.
///
/// The service is `Send + Sync`: the query and rate-limit counters are
/// atomics, so one instance can be shared by every worker of a serving
/// layer (see the `drywells-serve` crate). The per-window budget is
/// enforced exactly — concurrent queries can never over-admit past the
/// budget, and `total_queries` never loses increments.
pub struct RdapServer {
    db: WhoisDb,
    /// Maximum queries per window; `None` disables limiting.
    budget_per_window: Option<u64>,
    used_in_window: AtomicU64,
    total_queries: AtomicU64,
}

impl RdapServer {
    /// Serve `db` without rate limiting.
    pub fn new(db: WhoisDb) -> Self {
        RdapServer {
            db,
            budget_per_window: None,
            used_in_window: AtomicU64::new(0),
            total_queries: AtomicU64::new(0),
        }
    }

    /// Serve `db` allowing at most `budget` queries per window.
    pub fn with_rate_limit(db: WhoisDb, budget: u64) -> Self {
        RdapServer {
            db,
            budget_per_window: Some(budget),
            used_in_window: AtomicU64::new(0),
            total_queries: AtomicU64::new(0),
        }
    }

    /// Reset the rate-limit window (a new day, in the pipeline's
    /// pacing terms).
    pub fn reset_window(&self) {
        self.used_in_window.store(0, Ordering::Relaxed);
    }

    /// Total queries answered or rejected since construction.
    pub fn total_queries(&self) -> u64 {
        self.total_queries.load(Ordering::Relaxed)
    }

    /// Charge one query against the window budget. The
    /// compare-exchange loop admits exactly `budget` queries per
    /// window even under contention.
    fn admit(&self) -> Result<(), RdapError> {
        let Some(budget) = self.budget_per_window else {
            return Ok(());
        };
        self.used_in_window
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |used| {
                (used < budget).then_some(used + 1)
            })
            .map(|_| ())
            .map_err(|used| {
                obs::metrics::counter("rdap_rejected_total").inc();
                obs::event!(obs::Level::Warn, "rdap_rejected", used = used, budget = budget);
                RdapError::RateLimited
            })
    }

    /// Look up the network exactly covering `range`.
    ///
    /// This mirrors `GET /ip/<start>-<end>`: only exact objects are
    /// returned; there are no wildcard queries.
    pub fn query(&self, range: IpRange) -> Result<RdapResponse, RdapError> {
        self.total_queries.fetch_add(1, Ordering::Relaxed);
        self.admit()?;
        let obj = self.db.exact(range).ok_or(RdapError::NotFound)?;
        let parent = self.db.parent_of(range);
        Ok(RdapResponse::from_object(obj, parent))
    }

    /// Look up the smallest network containing a single address —
    /// the semantics of `GET /rdap/ip/{addr}` in the deployed RDAP
    /// services (the returned object's parent becomes `parentHandle`).
    pub fn query_ip(&self, addr: u32) -> Result<RdapResponse, RdapError> {
        self.total_queries.fetch_add(1, Ordering::Relaxed);
        self.admit()?;
        let obj = self
            .db
            .objects()
            .iter()
            .filter(|o| o.range.contains_address(addr))
            .min_by_key(|o| o.num_addresses())
            .ok_or(RdapError::NotFound)?;
        let parent = self.db.parent_of(obj.range);
        Ok(RdapResponse::from_object(obj, parent))
    }

    /// Render a response as RFC 7483 JSON text.
    pub fn to_json(response: &RdapResponse) -> String {
        serde_json::to_string_pretty(response).expect("serializable response")
    }

    /// The wrapped database (test/diagnostic access).
    pub fn db(&self) -> &WhoisDb {
        &self.db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inetnum::InetnumStatus;
    use nettypes::date::date;

    fn db() -> WhoisDb {
        let mut db = WhoisDb::new();
        let mk = |r: &str, status, org: &str, name: &str| Inetnum {
            range: r.parse().unwrap(),
            netname: name.into(),
            status,
            org: org.into(),
            admin_c: format!("AC-{org}"),
            created: date("2018-01-01"),
        };
        db.insert(mk("10.0.0.0 - 10.0.255.255", InetnumStatus::AllocatedPa, "LIR1", "ALLOC"));
        db.insert(mk("10.0.1.0 - 10.0.1.255", InetnumStatus::AssignedPa, "CUST1", "LEASE"));
        db
    }

    #[test]
    fn query_returns_parent_handle() {
        let server = RdapServer::new(db());
        let child: IpRange = "10.0.1.0 - 10.0.1.255".parse().unwrap();
        let resp = server.query(child).unwrap();
        assert_eq!(resp.object_class_name, "ip network");
        assert_eq!(resp.name, "LEASE");
        let parent: IpRange = "10.0.0.0 - 10.0.255.255".parse().unwrap();
        let parent_resp = server.query(parent).unwrap();
        assert_eq!(resp.parent_handle, Some(parent_resp.handle.clone()));
        assert_eq!(parent_resp.parent_handle, None);
    }

    #[test]
    fn unknown_range_is_not_found() {
        let server = RdapServer::new(db());
        let r: IpRange = "192.0.2.0 - 192.0.2.255".parse().unwrap();
        assert_eq!(server.query(r), Err(RdapError::NotFound));
    }

    #[test]
    fn rate_limit_enforced_and_resets() {
        let server = RdapServer::with_rate_limit(db(), 2);
        let r: IpRange = "10.0.1.0 - 10.0.1.255".parse().unwrap();
        assert!(server.query(r).is_ok());
        assert!(server.query(r).is_ok());
        assert_eq!(server.query(r), Err(RdapError::RateLimited));
        server.reset_window();
        assert!(server.query(r).is_ok());
        assert_eq!(server.total_queries(), 4);
    }

    #[test]
    fn query_ip_returns_smallest_enclosing() {
        let server = RdapServer::new(db());
        let resp = server.query_ip(nettypes::parse_ipv4("10.0.1.77").unwrap());
        let resp = resp.unwrap();
        assert_eq!(resp.name, "LEASE");
        assert!(resp.parent_handle.is_some());
        // An address only the allocation covers.
        let resp = server.query_ip(nettypes::parse_ipv4("10.0.9.1").unwrap()).unwrap();
        assert_eq!(resp.name, "ALLOC");
        assert_eq!(resp.parent_handle, None);
        // An address outside every object.
        let miss = server.query_ip(nettypes::parse_ipv4("192.0.2.1").unwrap());
        assert_eq!(miss, Err(RdapError::NotFound));
    }

    #[test]
    fn concurrent_budget_is_exact() {
        // N threads hammer one shared service; the window budget must
        // admit exactly `budget` queries and `total_queries` must not
        // lose a single increment.
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 50;
        const BUDGET: u64 = 100;
        let server = RdapServer::with_rate_limit(db(), BUDGET);
        let r: IpRange = "10.0.1.0 - 10.0.1.255".parse().unwrap();
        let admitted: u64 = std::thread::scope(|s| {
            let handles: Vec<_> = (0..THREADS)
                .map(|_| {
                    s.spawn(|| {
                        (0..PER_THREAD)
                            .filter(|_| server.query(r).is_ok())
                            .count() as u64
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(admitted, BUDGET);
        assert_eq!(server.total_queries(), THREADS * PER_THREAD);
    }

    #[test]
    fn server_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RdapServer>();
    }

    #[test]
    fn json_shape() {
        let server = RdapServer::new(db());
        let r: IpRange = "10.0.1.0 - 10.0.1.255".parse().unwrap();
        let resp = server.query(r).unwrap();
        let json = RdapServer::to_json(&resp);
        assert!(json.contains("\"objectClassName\": \"ip network\""));
        assert!(json.contains("\"parentHandle\""));
        assert!(json.contains("\"startAddress\": \"10.0.1.0\""));
        // And it parses back.
        let back: RdapResponse = serde_json::from_str(&json).unwrap();
        assert_eq!(back, resp);
    }
}
