//! The classic WHOIS text query protocol (RIPE flavour).
//!
//! RDAP is the designated successor (§4), but the ecosystem the paper
//! measures still runs on WHOIS: single-IP lookups return the smallest
//! enclosing `inetnum`, and the RIPE server supports hierarchy flags:
//!
//! * `-L` — all less-specific objects (the delegation chain upwards),
//! * `-m` — one level of more-specific objects,
//! * `-M` — all more-specific objects,
//! * `-x` — only an exact range match.
//!
//! Responses are rendered in the same paragraph format as the
//! database dumps, prefixed with `%`-comment headers, exactly like a
//! port-43 conversation.

use crate::database::WhoisDb;
use crate::inetnum::Inetnum;
use crate::snapshot::to_split_file;
use nettypes::range::IpRange;

/// A parsed WHOIS query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WhoisQuery {
    /// Return all less-specific objects (`-L`).
    pub less_specific_all: bool,
    /// Return one level of more-specific objects (`-m`).
    pub more_specific_one: bool,
    /// Return all more-specific objects (`-M`).
    pub more_specific_all: bool,
    /// Exact match only (`-x`).
    pub exact_only: bool,
    /// The queried object: a single IP or a range.
    pub target: QueryTarget,
}

/// What the query asks about.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryTarget {
    /// A single address (classic lookup).
    Address(u32),
    /// An explicit range.
    Range(IpRange),
}

/// Query parse errors (reported as `%ERROR:` lines by the server).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// Unknown flag.
    UnknownFlag(String),
    /// Missing or unparseable target.
    BadTarget(String),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::UnknownFlag(s) => write!(f, "unknown flag {s:?}"),
            QueryError::BadTarget(s) => write!(f, "cannot parse query target {s:?}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl WhoisQuery {
    /// Parse a query line, e.g. `-L 193.0.0.0 - 193.0.0.255` or
    /// `193.0.0.1`.
    pub fn parse(line: &str) -> Result<WhoisQuery, QueryError> {
        let mut q = WhoisQuery {
            less_specific_all: false,
            more_specific_one: false,
            more_specific_all: false,
            exact_only: false,
            target: QueryTarget::Address(0),
        };
        let mut rest: Vec<&str> = Vec::new();
        for tok in line.split_whitespace() {
            match tok {
                "-L" => q.less_specific_all = true,
                "-m" => q.more_specific_one = true,
                "-M" => q.more_specific_all = true,
                "-x" => q.exact_only = true,
                t if t.starts_with('-') && rest.is_empty() => {
                    return Err(QueryError::UnknownFlag(t.to_string()))
                }
                t => rest.push(t),
            }
        }
        let target_str = rest.join(" ");
        if target_str.is_empty() {
            return Err(QueryError::BadTarget(String::new()));
        }
        q.target = if target_str.contains('-') {
            QueryTarget::Range(
                target_str
                    .parse()
                    .map_err(|_| QueryError::BadTarget(target_str.clone()))?,
            )
        } else if let Some((net, len)) = target_str.split_once('/') {
            // CIDR notation is accepted and converted to a range.
            let prefix: nettypes::prefix::Prefix = format!("{net}/{len}")
                .parse()
                .map_err(|_| QueryError::BadTarget(target_str.clone()))?;
            QueryTarget::Range(IpRange::from_prefix(prefix))
        } else {
            QueryTarget::Address(
                nettypes::parse_ipv4(&target_str)
                    .map_err(|_| QueryError::BadTarget(target_str.clone()))?,
            )
        };
        Ok(q)
    }
}

/// The WHOIS query service over a database snapshot.
pub struct WhoisServer<'a> {
    db: &'a WhoisDb,
}

impl<'a> WhoisServer<'a> {
    /// Serve queries against `db`.
    pub fn new(db: &'a WhoisDb) -> Self {
        WhoisServer { db }
    }

    /// The primary object for a target: exact range match, or the
    /// smallest enclosing object.
    fn primary(&self, target: QueryTarget) -> Option<&'a Inetnum> {
        match target {
            QueryTarget::Range(r) => self.db.exact(r).or_else(|| {
                self.db
                    .objects()
                    .iter()
                    .filter(|o| o.range.contains_range(&r))
                    .min_by_key(|o| o.num_addresses())
            }),
            QueryTarget::Address(a) => self
                .db
                .objects()
                .iter()
                .filter(|o| o.range.contains_address(a))
                .min_by_key(|o| o.num_addresses()),
        }
    }

    /// Answer a query line with a port-43-style text response.
    pub fn handle(&self, line: &str) -> String {
        let query = match WhoisQuery::parse(line) {
            Ok(q) => q,
            Err(e) => return format!("%ERROR:108: bad query\n% {e}\n"),
        };
        let mut results: Vec<Inetnum> = Vec::new();

        let primary = self.primary(query.target);
        if query.exact_only {
            if let QueryTarget::Range(r) = query.target {
                if let Some(o) = self.db.exact(r) {
                    results.push(o.clone());
                }
            }
        } else if let Some(p) = primary {
            results.push(p.clone());
        }

        if let Some(p) = primary {
            if query.less_specific_all {
                let mut up: Vec<Inetnum> = self
                    .db
                    .objects()
                    .iter()
                    .filter(|o| o.range.contains_range(&p.range) && o.range != p.range)
                    .cloned()
                    .collect();
                up.sort_by_key(|o| std::cmp::Reverse(o.num_addresses()));
                results.extend(up);
            }
            if query.more_specific_one || query.more_specific_all {
                let mut down: Vec<Inetnum> = self
                    .db
                    .objects()
                    .iter()
                    .filter(|o| p.range.contains_range(&o.range) && o.range != p.range)
                    .cloned()
                    .collect();
                down.sort_by_key(|o| o.range);
                if query.more_specific_one {
                    // Keep only objects whose direct parent is `p`.
                    let all = down.clone();
                    down.retain(|o| {
                        !all.iter().any(|mid| {
                            mid.range != o.range
                                && mid.range.contains_range(&o.range)
                        })
                    });
                }
                results.extend(down);
            }
        }

        if results.is_empty() {
            return "%ERROR:101: no entries found\n".to_string();
        }
        let mut out = String::from("% This is a simulated RIPE-style WHOIS service.\n\n");
        out.push_str(&to_split_file(&results));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inetnum::InetnumStatus;
    use nettypes::date::date;

    fn db() -> WhoisDb {
        let mut db = WhoisDb::new();
        let mk = |r: &str, status, name: &str| Inetnum {
            range: r.parse().unwrap(),
            netname: name.into(),
            status,
            org: format!("ORG-{name}"),
            admin_c: format!("AC-{name}"),
            created: date("2018-01-01"),
        };
        db.insert(mk("10.0.0.0 - 10.255.255.255", InetnumStatus::AllocatedPa, "TOP"));
        db.insert(mk("10.0.0.0 - 10.0.255.255", InetnumStatus::SubAllocatedPa, "MID"));
        db.insert(mk("10.0.1.0 - 10.0.1.255", InetnumStatus::AssignedPa, "LEAF-A"));
        db.insert(mk("10.0.2.0 - 10.0.2.255", InetnumStatus::AssignedPa, "LEAF-B"));
        db
    }

    #[test]
    fn single_ip_returns_smallest_enclosing() {
        let db = db();
        let server = WhoisServer::new(&db);
        let resp = server.handle("10.0.1.77");
        assert!(resp.contains("netname:        LEAF-A"), "{resp}");
        assert!(!resp.contains("LEAF-B"));
        assert!(!resp.contains("netname:        MID"));
        // An IP between assignments falls back to the covering object.
        let resp = server.handle("10.0.9.1");
        assert!(resp.contains("netname:        MID"));
        // Outside everything: error 101.
        let resp = server.handle("192.0.2.1");
        assert!(resp.starts_with("%ERROR:101"));
    }

    #[test]
    fn less_specific_flag_walks_up() {
        let db = db();
        let server = WhoisServer::new(&db);
        let resp = server.handle("-L 10.0.1.0 - 10.0.1.255");
        let leaf = resp.find("LEAF-A").expect("leaf present");
        let mid = resp.find("netname:        MID").expect("mid present");
        let top = resp.find("netname:        TOP").expect("top present");
        // Primary first, then ancestors from least specific... the RIPE
        // convention lists the exact match first.
        assert!(leaf < top && leaf < mid, "{resp}");
    }

    #[test]
    fn more_specific_flags() {
        let db = db();
        let server = WhoisServer::new(&db);
        // One level below TOP is MID only.
        let resp = server.handle("-m 10.0.0.0 - 10.255.255.255");
        assert!(resp.contains("MID"));
        assert!(!resp.contains("LEAF-A"), "{resp}");
        // All levels below TOP include the leaves.
        let resp = server.handle("-M 10.0.0.0 - 10.255.255.255");
        assert!(resp.contains("LEAF-A") && resp.contains("LEAF-B"));
    }

    #[test]
    fn exact_flag() {
        let db = db();
        let server = WhoisServer::new(&db);
        let hit = server.handle("-x 10.0.1.0 - 10.0.1.255");
        assert!(hit.contains("LEAF-A"));
        // A sub-range that matches nothing exactly: no entries.
        let miss = server.handle("-x 10.0.1.0 - 10.0.1.127");
        assert!(miss.starts_with("%ERROR:101"), "{miss}");
        // Without -x the same sub-range falls back to the enclosing leaf.
        let fallback = server.handle("10.0.1.0 - 10.0.1.127");
        assert!(fallback.contains("LEAF-A"));
    }

    #[test]
    fn cidr_notation_accepted() {
        let db = db();
        let server = WhoisServer::new(&db);
        let resp = server.handle("10.0.1.0/24");
        assert!(resp.contains("LEAF-A"));
    }

    #[test]
    fn bad_queries_report_errors() {
        let db = db();
        let server = WhoisServer::new(&db);
        assert!(server.handle("-Z 10.0.0.1").starts_with("%ERROR:108"));
        assert!(server.handle("").starts_with("%ERROR:108"));
        assert!(server.handle("not-an-ip").starts_with("%ERROR:108"));
        assert!(server.handle("10.0.0.0 - bananas").starts_with("%ERROR:108"));
    }

    #[test]
    fn responses_parse_back_as_objects() {
        let db = db();
        let server = WhoisServer::new(&db);
        let resp = server.handle("-L 10.0.1.0 - 10.0.1.255");
        // Strip comment lines and reparse with the snapshot codec.
        let objs = crate::snapshot::parse_split_file(&resp).unwrap();
        assert_eq!(objs.len(), 3);
    }
}
