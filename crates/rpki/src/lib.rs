//! # rpki
//!
//! The RPKI substrate behind Appendix A of *When Wells Run Dry*:
//!
//! * [`roa`] — Route Origin Authorizations and RFC 6811 route-origin
//!   validation,
//! * [`snapshot`] — daily validated-ROA snapshot series with a
//!   calibrated stability mixture (most ROAs are rock-stable, a
//!   minority glitch), generated from a ground-truth
//!   [`bgpsim::scenario::LeaseWorld`],
//! * [`delegation`] — RPKI-based delegation inference: `P` has a ROA
//!   for AS *S*, a sub-prefix `P'` has a ROA for AS *T ≠ S*,
//! * [`consistency`] — the Appendix A rule evaluator: *"if we observe
//!   a delegation on day X and on day X+M, the delegation also exists
//!   for all but N days in between"*, with fail-rate curves over (M, N)
//!   — Figure 5 — and the derived choice of the (M = 10, N = 0) rule
//!   used by the paper's extension (v).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod consistency;
pub mod delegation;
pub mod roa;
pub mod snapshot;

pub use consistency::{evaluate_rule, fail_rate_curves, ConsistencyReport, RuleOutcome};
pub use delegation::{infer_rpki_delegations, RpkiDelegation};
pub use roa::{Roa, RouteValidity};
pub use snapshot::{RoaSnapshot, SnapshotSeries, SnapshotSeriesConfig};
