//! RPKI-based delegation inference.
//!
//! Appendix A: "Rather than taking the announcements of P and P', we
//! now check whether those prefixes have Route Origin Authorizations
//! (ROAs) assigned to different ASes." A delegation `(P', S, T)` is
//! inferred from a snapshot when some ROA authorizes S for P, another
//! authorizes T ≠ S for P', and P strictly covers P'.

use crate::snapshot::RoaSnapshot;
use nettypes::asn::Asn;
use nettypes::prefix::Prefix;
use nettypes::trie::PrefixTrie;
use serde::{Deserialize, Serialize};

/// A delegation inferred from RPKI data.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub struct RpkiDelegation {
    /// The delegated (more-specific) prefix P'.
    pub prefix: Prefix,
    /// The delegator AS S (holder of a covering ROA).
    pub delegator: Asn,
    /// The delegatee AS T (holder of the P' ROA).
    pub delegatee: Asn,
}

/// Infer all delegations visible in one snapshot.
///
/// When several covering ROAs with distinct origins exist, the
/// *nearest* (most specific) covering ROA with an origin different
/// from the delegatee's determines the delegator — the same
/// most-specific-ancestor semantics the BGP inference uses.
pub fn infer_rpki_delegations(snapshot: &RoaSnapshot) -> Vec<RpkiDelegation> {
    // Index ROA origins by prefix. Multiple ROAs per prefix are
    // possible; keep all origins.
    let mut trie: PrefixTrie<Vec<Asn>> = PrefixTrie::new();
    for roa in &snapshot.roas {
        if let Some(v) = trie.get_mut(&roa.prefix) {
            if !v.contains(&roa.asn) {
                v.push(roa.asn);
            }
        } else {
            trie.insert(roa.prefix, vec![roa.asn]);
        }
    }

    let mut out = Vec::new();
    for roa in &snapshot.roas {
        // Find the nearest strictly-covering ROA prefix with a
        // different origin.
        let covering = trie.covering(&roa.prefix);
        for (_, origins) in covering.into_iter().rev() {
            if let Some(&delegator) = origins.iter().find(|&&o| o != roa.asn) {
                out.push(RpkiDelegation {
                    prefix: roa.prefix,
                    delegator,
                    delegatee: roa.asn,
                });
                break;
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Convenience: infer delegations for every day of a series, returning
/// one sorted set per day.
pub fn infer_series(days: &[RoaSnapshot]) -> Vec<Vec<RpkiDelegation>> {
    days.iter().map(infer_rpki_delegations).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::roa::Roa;
    use nettypes::date::Date;
    use nettypes::prefix::pfx;

    fn snap(roas: Vec<Roa>) -> RoaSnapshot {
        RoaSnapshot {
            date: Date::from_days(0),
            roas,
        }
    }

    #[test]
    fn basic_delegation() {
        let s = snap(vec![
            Roa::exact(pfx("10.0.0.0/16"), Asn(1)),
            Roa::exact(pfx("10.0.1.0/24"), Asn(2)),
        ]);
        let d = infer_rpki_delegations(&s);
        assert_eq!(
            d,
            vec![RpkiDelegation {
                prefix: pfx("10.0.1.0/24"),
                delegator: Asn(1),
                delegatee: Asn(2),
            }]
        );
    }

    #[test]
    fn same_origin_is_not_a_delegation() {
        let s = snap(vec![
            Roa::exact(pfx("10.0.0.0/16"), Asn(1)),
            Roa::exact(pfx("10.0.1.0/24"), Asn(1)),
        ]);
        assert!(infer_rpki_delegations(&s).is_empty());
    }

    #[test]
    fn nearest_covering_roa_wins() {
        let s = snap(vec![
            Roa::exact(pfx("10.0.0.0/8"), Asn(1)),
            Roa::exact(pfx("10.0.0.0/16"), Asn(2)),
            Roa::exact(pfx("10.0.1.0/24"), Asn(3)),
        ]);
        let d = infer_rpki_delegations(&s);
        // /24 is delegated by the /16 holder (nearest), the /16 by the /8.
        assert!(d.contains(&RpkiDelegation {
            prefix: pfx("10.0.1.0/24"),
            delegator: Asn(2),
            delegatee: Asn(3),
        }));
        assert!(d.contains(&RpkiDelegation {
            prefix: pfx("10.0.0.0/16"),
            delegator: Asn(1),
            delegatee: Asn(2),
        }));
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn nearest_ancestor_with_same_origin_skipped() {
        // /16 has the same origin as the /24; the delegator is the /8
        // holder.
        let s = snap(vec![
            Roa::exact(pfx("10.0.0.0/8"), Asn(1)),
            Roa::exact(pfx("10.0.0.0/16"), Asn(3)),
            Roa::exact(pfx("10.0.1.0/24"), Asn(3)),
        ]);
        let d = infer_rpki_delegations(&s);
        assert!(d.contains(&RpkiDelegation {
            prefix: pfx("10.0.1.0/24"),
            delegator: Asn(1),
            delegatee: Asn(3),
        }));
    }

    #[test]
    fn no_covering_roa_no_delegation() {
        let s = snap(vec![Roa::exact(pfx("10.0.1.0/24"), Asn(2))]);
        assert!(infer_rpki_delegations(&s).is_empty());
    }

    #[test]
    fn duplicate_roas_deduplicated() {
        let s = snap(vec![
            Roa::exact(pfx("10.0.0.0/16"), Asn(1)),
            Roa::exact(pfx("10.0.1.0/24"), Asn(2)),
            Roa::exact(pfx("10.0.1.0/24"), Asn(2)),
        ]);
        assert_eq!(infer_rpki_delegations(&s).len(), 1);
    }
}
