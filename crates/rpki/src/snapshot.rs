//! Daily validated-ROA snapshot series.
//!
//! The paper uses the preprocessed RPKI snapshots of Chung et al. to
//! infer delegations and evaluate consistency rules. We generate a
//! series from a ground-truth lease world with a *stability mixture*
//! calibrated so the Appendix A numbers come out:
//!
//! * a large fraction of ROAs are rock-stable (present every day of
//!   their validity period),
//! * a minority "glitch": individual days missing (publication-point
//!   outages, expired-then-renewed certificates),
//!
//! which reproduces "fail rate ≤ 5 % at (M = 10, N = 0)" while keeping
//! the fail rate under 30 % even for 100-day windows.

use crate::roa::Roa;
use bgpsim::scenario::LeaseWorld;
use nettypes::date::{Date, DateRange};
use rand::prelude::*;
use rand_pcg::Pcg64Mcg;
use serde::{Deserialize, Serialize};

/// All ROAs valid on one day.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoaSnapshot {
    /// The snapshot date.
    pub date: Date,
    /// The validated ROAs.
    pub roas: Vec<Roa>,
}

/// Configuration for series generation.
#[derive(Clone, Debug)]
pub struct SnapshotSeriesConfig {
    /// RNG seed.
    pub seed: u64,
    /// Fraction of allocations that register ROAs at all (RPKI
    /// coverage was partial in the study window).
    pub allocation_coverage: f64,
    /// Fraction of *announced* leases whose delegatee registers a ROA
    /// (an order of magnitude fewer delegations than BGP, per the
    /// paper).
    pub lease_coverage: f64,
    /// Fraction of ROAs that are perfectly stable.
    pub stable_fraction: f64,
    /// Daily missing-probability for glitchy ROAs.
    pub glitch_rate: f64,
}

impl Default for SnapshotSeriesConfig {
    fn default() -> Self {
        SnapshotSeriesConfig {
            seed: 99,
            allocation_coverage: 0.35,
            lease_coverage: 0.5,
            stable_fraction: 0.9,
            glitch_rate: 0.022,
        }
    }
}

/// A generated series of daily snapshots.
#[derive(Clone, Debug)]
pub struct SnapshotSeries {
    /// One snapshot per day of the span, in order.
    pub days: Vec<RoaSnapshot>,
    /// The covered span.
    pub span: DateRange,
}

impl SnapshotSeries {
    /// The snapshot for a date, if in the span.
    pub fn on(&self, d: Date) -> Option<&RoaSnapshot> {
        if !self.span.contains(d) {
            return None;
        }
        let idx = (d - self.span.start) as usize;
        self.days.get(idx)
    }

    /// Generate the series for a world.
    ///
    /// ROA lifecycle: an allocation's ROA (for the delegator AS) spans
    /// the whole window; a covered lease's ROA (for the delegatee AS)
    /// spans the lease's active period — RPKI reflects the
    /// *administrative* delegation, not the day-to-day announcement
    /// state, which is exactly why it is a cleaner consistency oracle
    /// than BGP (Appendix A).
    pub fn generate(world: &LeaseWorld, config: &SnapshotSeriesConfig) -> SnapshotSeries {
        let _obs_span = obs::span!("rpki_snapshots", days = world.span.num_days() as u64);
        let mut rng = Pcg64Mcg::seed_from_u64(config.seed ^ 0x5AFE_2B1D_0000_0003);
        let span = world.span;

        // Decide per-object participation and stability up front.
        struct RoaPlan {
            roa: Roa,
            active: DateRange,
            glitchy: bool,
            noise_key: u64,
        }
        let mut plans: Vec<RoaPlan> = Vec::new();
        for a in &world.allocations {
            if rng.gen::<f64>() >= config.allocation_coverage {
                continue;
            }
            plans.push(RoaPlan {
                roa: Roa::exact(a.prefix, a.asn),
                active: span,
                glitchy: rng.gen::<f64>() >= config.stable_fraction,
                noise_key: rng.gen(),
            });
            // The delegator's covered leases may also get ROAs.
            for l in world.leases.iter().filter(|l| l.parent == a.prefix) {
                if !l.announced || rng.gen::<f64>() >= config.lease_coverage {
                    continue;
                }
                plans.push(RoaPlan {
                    roa: Roa::exact(l.prefix, l.delegatee_asn),
                    active: l.active,
                    glitchy: rng.gen::<f64>() >= config.stable_fraction,
                    noise_key: rng.gen(),
                });
            }
        }

        // Render days. Glitches use a deterministic hash so the series
        // is reproducible regardless of iteration order.
        let mut days = Vec::with_capacity(span.num_days() as usize);
        for d in span.iter() {
            let mut roas = Vec::new();
            for p in &plans {
                if !p.active.contains(d) {
                    continue;
                }
                if p.glitchy {
                    let h = splitmix64(p.noise_key ^ (d.days_since_epoch() as u64));
                    let u = (h >> 11) as f64 / (1u64 << 53) as f64;
                    if u < config.glitch_rate {
                        continue; // missing today
                    }
                }
                roas.push(p.roa);
            }
            days.push(RoaSnapshot { date: d, roas });
        }

        SnapshotSeries { days, span }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpsim::scenario::WorldConfig;
    use bgpsim::topology::TopologyConfig;
    use nettypes::date::date;

    fn world() -> LeaseWorld {
        LeaseWorld::generate(&WorldConfig {
            seed: 41,
            span: DateRange::new(date("2018-01-01"), date("2018-12-31")),
            topology: TopologyConfig {
                seed: 41,
                num_tier1: 4,
                num_tier2: 12,
                num_stubs: 100,
                multi_as_org_fraction: 0.15,
            },
            num_allocations: 60,
            initial_active_leases: 300,
            bgp_visible_fraction: 0.4,
            ..Default::default()
        })
    }

    #[test]
    fn series_covers_span() {
        let w = world();
        let s = SnapshotSeries::generate(&w, &SnapshotSeriesConfig::default());
        assert_eq!(s.days.len() as i64, w.span.num_days());
        assert!(s.on(date("2018-06-01")).is_some());
        assert!(s.on(date("2019-06-01")).is_none());
        assert_eq!(s.on(date("2018-06-01")).unwrap().date, date("2018-06-01"));
    }

    #[test]
    fn stable_roas_present_every_day() {
        let w = world();
        let cfg = SnapshotSeriesConfig {
            stable_fraction: 1.0, // all stable
            ..Default::default()
        };
        let s = SnapshotSeries::generate(&w, &cfg);
        // Allocation ROAs span every day; count must be constant.
        let alloc_roa_count = |snap: &RoaSnapshot| {
            snap.roas
                .iter()
                .filter(|r| w.allocations.iter().any(|a| a.prefix == r.prefix))
                .count()
        };
        let first = alloc_roa_count(&s.days[0]);
        assert!(first > 0);
        for d in &s.days {
            assert_eq!(alloc_roa_count(d), first);
        }
    }

    #[test]
    fn glitches_remove_some_days() {
        let w = world();
        let cfg = SnapshotSeriesConfig {
            stable_fraction: 0.0, // all glitchy
            glitch_rate: 0.2,
            ..Default::default()
        };
        let s = SnapshotSeries::generate(&w, &cfg);
        let counts: Vec<usize> = s.days.iter().map(|d| d.roas.len()).collect();
        let min = *counts.iter().min().unwrap();
        let max = *counts.iter().max().unwrap();
        assert!(min < max, "glitching should vary the daily ROA count");
    }

    #[test]
    fn deterministic() {
        let w = world();
        let cfg = SnapshotSeriesConfig::default();
        let a = SnapshotSeries::generate(&w, &cfg);
        let b = SnapshotSeries::generate(&w, &cfg);
        for (x, y) in a.days.iter().zip(&b.days) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn lease_roas_bounded_by_lease_period() {
        let w = world();
        let cfg = SnapshotSeriesConfig {
            allocation_coverage: 1.0,
            lease_coverage: 1.0,
            stable_fraction: 1.0,
            ..Default::default()
        };
        let s = SnapshotSeries::generate(&w, &cfg);
        // Pick an announced lease that ends well before the span end.
        let lease = w
            .leases
            .iter()
            .find(|l| l.announced && l.active.end < w.span.end - 30 && l.active.start > w.span.start)
            .expect("some mid-window lease");
        let has_roa = |d: Date| {
            s.on(d)
                .map(|snap| snap.roas.iter().any(|r| r.prefix == lease.prefix && r.asn == lease.delegatee_asn))
                .unwrap_or(false)
        };
        assert!(has_roa(lease.active.start));
        assert!(has_roa(lease.active.end));
        assert!(!has_roa(lease.active.end + 5));
        if lease.active.start > w.span.start {
            assert!(!has_roa(lease.active.start - 1));
        }
    }
}
