//! The Appendix A consistency-rule evaluator (Figure 5).
//!
//! Rules have the form: *"If we observe a delegation on day X and on
//! day X + M, the delegation also exists for all but N days in
//! between."* A premise is valid when the delegation is present on
//! both endpoint days and no *conflicting* delegation (the same prefix
//! delegated to a different delegatee T') appears in between; the
//! conclusion is violated when more than N interior days lack the
//! delegation. The **fail rate** is the fraction of valid premises
//! with violated conclusions.
//!
//! The paper evaluates these rules on RPKI delegations
//! (2018-01-01 → 2020-06-01) and picks (M = 10, N = 0) — fail rate
//! below 5 % — as the gap-filling rule for BGP delegations
//! (extension (v)).

use crate::delegation::RpkiDelegation;
use nettypes::asn::Asn;
use nettypes::prefix::Prefix;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The outcome of evaluating one (M, N) rule over a series.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RuleOutcome {
    /// Window length M in days.
    pub m: usize,
    /// Allowed missing days N.
    pub n: usize,
    /// Number of valid premises.
    pub premises: u64,
    /// Premises whose conclusion was violated.
    pub failures: u64,
}

impl RuleOutcome {
    /// failures / premises (0.0 when no premise was valid).
    pub fn fail_rate(&self) -> f64 {
        if self.premises == 0 {
            0.0
        } else {
            self.failures as f64 / self.premises as f64
        }
    }
}

/// One Figure 5 curve: fail rate against M for a fixed N.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ConsistencyReport {
    /// The N of this curve.
    pub n: usize,
    /// `(M, fail_rate)` points.
    pub points: Vec<(usize, f64)>,
}

/// Per-key presence and conflict bitmaps over the series.
struct KeySeries {
    present: Vec<bool>,
    /// Prefix sums: number of present days in `[0, i)`.
    present_ps: Vec<u32>,
    /// Prefix sums: number of conflict days in `[0, i)`.
    conflict_ps: Vec<u32>,
}

impl KeySeries {
    fn finalize(present: Vec<bool>, conflict: Vec<bool>) -> KeySeries {
        let mut present_ps = Vec::with_capacity(present.len() + 1);
        let mut conflict_ps = Vec::with_capacity(conflict.len() + 1);
        present_ps.push(0);
        conflict_ps.push(0);
        let (mut p, mut c) = (0u32, 0u32);
        for i in 0..present.len() {
            p += present[i] as u32;
            c += conflict[i] as u32;
            present_ps.push(p);
            conflict_ps.push(c);
        }
        KeySeries {
            present,
            present_ps,
            conflict_ps,
        }
    }

    /// Present days in `[a, b)`.
    fn present_in(&self, a: usize, b: usize) -> u32 {
        self.present_ps[b] - self.present_ps[a]
    }

    /// Conflict days in `[a, b)`.
    fn conflicts_in(&self, a: usize, b: usize) -> u32 {
        self.conflict_ps[b] - self.conflict_ps[a]
    }
}

/// Build per-(prefix, delegatee) series from daily delegation sets.
fn build_series(days: &[Vec<RpkiDelegation>]) -> Vec<KeySeries> {
    let n_days = days.len();
    // (prefix, delegatee) → presence bitmap.
    let mut presence: HashMap<(Prefix, Asn), Vec<bool>> = HashMap::new();
    // prefix → per-day delegatee list (for conflicts).
    let mut by_prefix: HashMap<Prefix, Vec<Vec<Asn>>> = HashMap::new();
    for (di, day) in days.iter().enumerate() {
        for d in day {
            presence
                .entry((d.prefix, d.delegatee))
                .or_insert_with(|| vec![false; n_days])[di] = true;
            let slots = by_prefix
                .entry(d.prefix)
                .or_insert_with(|| vec![Vec::new(); n_days]);
            if !slots[di].contains(&d.delegatee) {
                slots[di].push(d.delegatee);
            }
        }
    }
    presence
        .into_iter()
        .map(|((prefix, delegatee), present)| {
            let slots = &by_prefix[&prefix];
            let conflict: Vec<bool> = (0..n_days)
                .map(|di| slots[di].iter().any(|&t| t != delegatee))
                .collect();
            KeySeries::finalize(present, conflict)
        })
        .collect()
}

fn evaluate_on_series(series: &[KeySeries], m: usize, n: usize) -> RuleOutcome {
    let mut out = RuleOutcome {
        m,
        n,
        premises: 0,
        failures: 0,
    };
    for ks in series {
        let n_days = ks.present.len();
        if m == 0 || m >= n_days {
            continue;
        }
        for x in 0..n_days - m {
            if !ks.present[x] || !ks.present[x + m] {
                continue;
            }
            // Interior window (X, X+M) exclusive.
            let (a, b) = (x + 1, x + m);
            if ks.conflicts_in(a, b) > 0 {
                continue; // premise invalid
            }
            out.premises += 1;
            let interior_days = (b - a) as u32;
            let missing = interior_days - ks.present_in(a, b);
            if missing as usize > n {
                out.failures += 1;
            }
        }
    }
    out
}

/// Evaluate a single (M, N) rule over daily delegation sets.
pub fn evaluate_rule(days: &[Vec<RpkiDelegation>], m: usize, n: usize) -> RuleOutcome {
    evaluate_on_series(&build_series(days), m, n)
}

/// Evaluate a grid of rules, producing one Figure 5 curve per N.
pub fn fail_rate_curves(
    days: &[Vec<RpkiDelegation>],
    ms: &[usize],
    ns: &[usize],
) -> Vec<ConsistencyReport> {
    let series = build_series(days);
    ns.iter()
        .map(|&n| ConsistencyReport {
            n,
            points: ms
                .iter()
                .map(|&m| (m, evaluate_on_series(&series, m, n).fail_rate()))
                .collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettypes::prefix::pfx;

    fn deleg(p: &str, s: u32, t: u32) -> RpkiDelegation {
        RpkiDelegation {
            prefix: pfx(p),
            delegator: Asn(s),
            delegatee: Asn(t),
        }
    }

    /// Build a series where one delegation is present according to the
    /// given pattern ('1' present, '0' absent).
    fn pattern(p: &str) -> Vec<Vec<RpkiDelegation>> {
        p.chars()
            .map(|c| {
                if c == '1' {
                    vec![deleg("10.0.1.0/24", 1, 2)]
                } else {
                    vec![]
                }
            })
            .collect()
    }

    #[test]
    fn continuous_presence_never_fails() {
        let days = pattern("1111111111");
        let o = evaluate_rule(&days, 5, 0);
        assert!(o.premises > 0);
        assert_eq!(o.failures, 0);
        assert_eq!(o.fail_rate(), 0.0);
    }

    #[test]
    fn single_gap_fails_n0_passes_n1() {
        let days = pattern("1101111111");
        // Window M=3 from day 0: endpoints 0 and 3 present, day 2 missing
        // is in (0,3)? Days 1,2 interior: day1 present, day2 absent → 1
        // missing → fails N=0, passes N=1.
        let o0 = evaluate_rule(&days, 3, 0);
        assert!(o0.failures > 0);
        let o1 = evaluate_rule(&days, 3, 1);
        assert_eq!(o1.failures, 0);
    }

    #[test]
    fn conflicting_delegation_invalidates_premise() {
        // Delegation (P, T=2) on days 0 and 4; on day 2 the prefix is
        // delegated to T'=3 instead: the premise is invalid, so no
        // failure is recorded even though days 1-3 are missing.
        let mut days = pattern("10001");
        days[2] = vec![deleg("10.0.1.0/24", 1, 3)];
        let o = evaluate_rule(&days, 4, 0);
        // The (T=2) key has no valid premise at M=4.
        // The (T=3) key has no M=4 pair.
        assert_eq!(o.premises, 0);
        assert_eq!(o.failures, 0);
    }

    #[test]
    fn gap_without_conflict_counts_as_failure() {
        let days = pattern("10001");
        let o = evaluate_rule(&days, 4, 0);
        assert_eq!(o.premises, 1);
        assert_eq!(o.failures, 1);
        assert_eq!(o.fail_rate(), 1.0);
        // N=3 tolerates the 3 missing interior days.
        let o3 = evaluate_rule(&days, 4, 3);
        assert_eq!(o3.failures, 0);
    }

    #[test]
    fn fail_rate_monotone_in_n() {
        // A noisy pattern.
        let days = pattern("110101101011011010110110101101");
        let mut last = f64::INFINITY;
        for n in 0..5 {
            let r = evaluate_rule(&days, 7, n).fail_rate();
            assert!(r <= last + 1e-12, "fail rate increased with N: {r} > {last}");
            last = r;
        }
    }

    #[test]
    fn multiple_keys_aggregate() {
        let mut days = pattern("11111");
        for d in days.iter_mut() {
            d.push(deleg("10.0.2.0/24", 1, 5));
        }
        // Break the second delegation in the middle.
        days[2].retain(|x| x.delegatee != Asn(5));
        let o = evaluate_rule(&days, 4, 0);
        assert_eq!(o.premises, 2);
        assert_eq!(o.failures, 1);
        assert!((o.fail_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn curves_shape() {
        let days = pattern("1110111011101110111011101110");
        let curves = fail_rate_curves(&days, &[2, 4, 8, 12], &[0, 1, 2]);
        assert_eq!(curves.len(), 3);
        for c in &curves {
            assert_eq!(c.points.len(), 4);
            for (_, r) in &c.points {
                assert!((0.0..=1.0).contains(r));
            }
        }
        // Higher N is never worse at the same M.
        for i in 1..curves.len() {
            for (a, b) in curves[i - 1].points.iter().zip(&curves[i].points) {
                assert!(b.1 <= a.1 + 1e-12);
            }
        }
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        assert_eq!(evaluate_rule(&[], 5, 0).premises, 0);
        let days = pattern("1");
        assert_eq!(evaluate_rule(&days, 1, 0).premises, 0);
        let days = pattern("11");
        let o = evaluate_rule(&days, 1, 0);
        // M=1 has an empty interior; premise valid, never fails.
        assert_eq!(o.premises, 1);
        assert_eq!(o.failures, 0);
        assert_eq!(evaluate_rule(&days, 0, 0).premises, 0);
    }
}
