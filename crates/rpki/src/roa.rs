//! Route Origin Authorizations and RFC 6811 origin validation.

use nettypes::asn::Asn;
use nettypes::prefix::Prefix;
use serde::{Deserialize, Serialize};

/// A Route Origin Authorization: `asn` may originate `prefix` and any
/// more-specific up to `max_len`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Roa {
    /// The authorized prefix.
    pub prefix: Prefix,
    /// Maximum announced length (≥ `prefix.len()`).
    pub max_len: u8,
    /// The authorized origin.
    pub asn: Asn,
}

impl Roa {
    /// Create a ROA; panics if `max_len` is invalid (callers construct
    /// ROAs from trusted generation code).
    pub fn new(prefix: Prefix, max_len: u8, asn: Asn) -> Roa {
        assert!(
            max_len >= prefix.len() && max_len <= 32,
            "invalid maxLength {max_len} for {prefix}"
        );
        Roa { prefix, max_len, asn }
    }

    /// A ROA whose maxLength equals the prefix length (the recommended
    /// deployment practice).
    pub fn exact(prefix: Prefix, asn: Asn) -> Roa {
        Roa::new(prefix, prefix.len(), asn)
    }

    /// Whether this ROA *covers* the announced prefix (prefix match,
    /// regardless of origin or maxLength).
    pub fn covers(&self, announced: &Prefix) -> bool {
        self.prefix.covers(announced)
    }

    /// RFC 6811: a ROA *matches* an announcement when it covers the
    /// prefix, the announced length does not exceed maxLength, and the
    /// origin equals the authorized ASN.
    pub fn matches(&self, announced: &Prefix, origin: Asn) -> bool {
        self.covers(announced) && announced.len() <= self.max_len && origin == self.asn
    }
}

/// RFC 6811 route-origin validation states.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum RouteValidity {
    /// At least one ROA matches.
    Valid,
    /// At least one ROA covers the prefix but none matches.
    Invalid,
    /// No ROA covers the prefix.
    NotFound,
}

/// Validate an announcement against a set of ROAs.
pub fn validate(roas: &[Roa], announced: &Prefix, origin: Asn) -> RouteValidity {
    let mut covered = false;
    for roa in roas {
        if roa.covers(announced) {
            covered = true;
            if roa.matches(announced, origin) {
                return RouteValidity::Valid;
            }
        }
    }
    if covered {
        RouteValidity::Invalid
    } else {
        RouteValidity::NotFound
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettypes::prefix::pfx;

    #[test]
    fn exact_match_is_valid() {
        let roas = [Roa::exact(pfx("193.0.0.0/21"), Asn(3333))];
        assert_eq!(
            validate(&roas, &pfx("193.0.0.0/21"), Asn(3333)),
            RouteValidity::Valid
        );
    }

    #[test]
    fn wrong_origin_is_invalid() {
        let roas = [Roa::exact(pfx("193.0.0.0/21"), Asn(3333))];
        assert_eq!(
            validate(&roas, &pfx("193.0.0.0/21"), Asn(666)),
            RouteValidity::Invalid
        );
    }

    #[test]
    fn more_specific_beyond_maxlen_is_invalid() {
        let roas = [Roa::new(pfx("193.0.0.0/21"), 22, Asn(3333))];
        assert_eq!(
            validate(&roas, &pfx("193.0.0.0/22"), Asn(3333)),
            RouteValidity::Valid
        );
        assert_eq!(
            validate(&roas, &pfx("193.0.0.0/24"), Asn(3333)),
            RouteValidity::Invalid
        );
    }

    #[test]
    fn uncovered_is_notfound() {
        let roas = [Roa::exact(pfx("193.0.0.0/21"), Asn(3333))];
        assert_eq!(
            validate(&roas, &pfx("10.0.0.0/8"), Asn(3333)),
            RouteValidity::NotFound
        );
        assert_eq!(validate(&[], &pfx("10.0.0.0/8"), Asn(1)), RouteValidity::NotFound);
    }

    #[test]
    fn any_matching_roa_wins() {
        // MOAS-style: two ROAs for the same prefix, different origins.
        let roas = [
            Roa::exact(pfx("10.0.0.0/16"), Asn(1)),
            Roa::exact(pfx("10.0.0.0/16"), Asn(2)),
        ];
        assert_eq!(validate(&roas, &pfx("10.0.0.0/16"), Asn(1)), RouteValidity::Valid);
        assert_eq!(validate(&roas, &pfx("10.0.0.0/16"), Asn(2)), RouteValidity::Valid);
        assert_eq!(validate(&roas, &pfx("10.0.0.0/16"), Asn(3)), RouteValidity::Invalid);
    }

    #[test]
    #[should_panic(expected = "invalid maxLength")]
    fn rejects_bad_maxlen() {
        let _ = Roa::new(pfx("10.0.0.0/16"), 8, Asn(1));
    }
}
