//! Quickstart: build a small synthetic Internet, run the paper's
//! delegation-inference pipeline on it, and score the result against
//! the simulator's ground truth.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use delegation::config::InferenceConfig;
use delegation::eval::evaluate_against_truth;
use delegation::metrics::{daily_metrics, summarize};
use delegation::pipeline::{run_pipeline, PipelineInput};
use drywells::experiments::build_bgp_study;
use drywells::StudyConfig;

fn main() {
    // A seconds-scale study: ~170 ASes, 3 simulated months.
    let config = StudyConfig::quick();
    println!(
        "generating world: {} allocations, span {} → {} …",
        config.world.num_allocations, config.world.span.start, config.world.span.end
    );
    let study = build_bgp_study(&config);
    println!(
        "world ready: {} ASes, {} leases ({} BGP-visible), {} observation days",
        study.world.topology.nodes().len(),
        study.world.leases.len(),
        study.world.leases.iter().filter(|l| l.announced).count(),
        study.days.len()
    );

    // Run both algorithm variants.
    for (label, cfg, as2org) in [
        ("baseline (Krenc-Feldmann)", InferenceConfig::baseline(), None),
        ("extended (this paper)", InferenceConfig::extended(), Some(&study.as2org)),
    ] {
        let result = run_pipeline(
            PipelineInput::Days(&study.days),
            study.world.span,
            &cfg,
            as2org,
        );
        let metrics = daily_metrics(&result);
        let summary = summarize(&metrics, 14);
        let eval = evaluate_against_truth(&study.world, &result);
        println!("\n--- {label} ---");
        println!("mean delegations/day: {:.1}", summary.mean_delegations);
        println!("daily-count CV:       {:.3}", summary.count_cv);
        println!("precision:            {:.1}%", eval.precision() * 100.0);
        println!("recall:               {:.1}%", eval.recall() * 100.0);
    }

    println!("\nsee `cargo run --release -p bench --bin repro -- all` for every figure/table");
}
