//! The collector-archive path end to end, the way the paper actually
//! consumed its data: generate RFC 6396 MRT archives (TABLE_DUMP_V2
//! RIBs + BGP4MP update files carrying real BGP UPDATE messages),
//! damage them, reconstruct daily views with the missing-file
//! fallback, and run the delegation inference on top. Also shows the
//! WHOIS text protocol used to explore the registry side.
//!
//! ```sh
//! cargo run --release --example archive_pipeline
//! ```

use bgpsim::updates::{ArchiveV2Config, CollectorArchiveV2};
use delegation::config::InferenceConfig;
use delegation::eval::evaluate_against_truth;
use delegation::pipeline::{run_pipeline, PipelineInput};
use drywells::experiments::build_bgp_study;
use drywells::StudyConfig;
use nettypes::date::date;
use rdap::database::{DbBuildConfig, WhoisDb};
use rdap::whois::WhoisServer;

fn main() {
    let config = StudyConfig::quick();
    println!("building world and rendering observation days…");
    let study = build_bgp_study(&config);

    println!("writing the MRT archive (weekly RIBs + daily update files)…");
    let mut archive = CollectorArchiveV2::generate(
        &study.world,
        study.visibility_model(),
        study.world.span,
        &ArchiveV2Config::default(),
    )
    .expect("archive encodes");
    println!(
        "archive: {} RIB files, {} update files, {:.1} MiB of RFC 6396 bytes",
        archive.rib_dates().count(),
        archive.update_dates().count(),
        archive.total_bytes() as f64 / (1024.0 * 1024.0)
    );

    // Damage it the way real archives are damaged.
    archive.drop_update_file(date("2018-02-03"));
    archive.drop_update_file(date("2018-03-11"));
    println!("dropped two update files; reconstruction will use the paper's fallback");

    let result = run_pipeline(
        PipelineInput::MrtArchive(&archive),
        study.world.span,
        &InferenceConfig::extended(),
        Some(&study.as2org),
    );
    let eval = evaluate_against_truth(&study.world, &result);
    println!(
        "inference over the damaged archive: precision {:.1}%, recall {:.1}% \
         ({} fallback days)",
        eval.precision() * 100.0,
        eval.recall() * 100.0,
        result.fallback_days.len()
    );

    // The registry side, through the classic WHOIS text protocol.
    println!("\nWHOIS lookups against the registry snapshot:");
    let db = WhoisDb::build_from_world(&study.world, study.world.span.end, &DbBuildConfig::default());
    let server = WhoisServer::new(&db);
    let as_of = study.world.span.end;
    if let Some(lease) = study
        .world
        .leases
        .iter()
        .find(|l| l.registered && l.active_on(as_of))
    {
        let query = format!("-L {}", nettypes::range::IpRange::from_prefix(lease.prefix));
        println!("$ whois {query}");
        for line in server.handle(&query).lines().take(16) {
            println!("  {line}");
        }
    }
}
