//! Leasing-market sizing: the §4 story end to end.
//!
//! Builds a ground-truth lease world, measures it through both lenses
//! the paper uses — BGP delegations and RDAP delegations — and prints
//! the coverage asymmetry plus the advertised leasing prices
//! (Figure 4) and the RPKI rule validation (Figure 5).
//!
//! ```sh
//! cargo run --release --example leasing_inference
//! ```

use drywells::experiments::{build_bgp_study, fig4, fig5, s4_coverage};
use drywells::StudyConfig;

fn main() {
    let config = StudyConfig::quick();

    println!("=== §4: BGP vs RDAP delegation coverage ===\n");
    let study = build_bgp_study(&config);
    let s4 = s4_coverage::run_with_study(&study);
    println!("{}", s4.rendered);

    println!("=== Figure 5: consistency-rule validation on RPKI ===\n");
    let f5 = fig5::run(&config);
    println!("{}", f5.rendered);

    println!("=== Figure 4: advertised leasing prices ===\n");
    let f4 = fig4::run();
    println!("{}", f4.rendered);
}
