//! Start the serving layer on ephemeral ports, issue a few requests
//! against it over real sockets, print the responses, and shut down
//! gracefully.
//!
//! ```sh
//! cargo run --release --example serve
//! ```

use drywells::StudyConfig;
use serve::client::get_once;
use serve::rate::RateLimitConfig;
use serve::{App, Server, ServerConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

fn main() {
    // Build the serving state from the quick study world: the WHOIS
    // database, the RDAP service, and the per-RIR transfer feeds.
    println!("building quick-scale serving state…");
    let app = App::from_study(
        &StudyConfig::quick(),
        Some(RateLimitConfig {
            burst: 64,
            per_second: 16.0,
        }),
    );

    // Pick an address that is actually registered in this world so the
    // RDAP and WHOIS lookups below show real objects, not misses.
    let target = nettypes::fmt_ipv4(
        app.whois_db()
            .objects()
            .first()
            .expect("study world registers at least one inetnum")
            .range
            .start(),
    );

    let config = ServerConfig {
        whois_addr: Some(SocketAddr::from(([127, 0, 0, 1], 0))),
        ..ServerConfig::default()
    };
    let server = Server::start(app, config).expect("bind loopback");
    let http = server.http_addr();
    let whois = server.whois_addr().expect("whois listener enabled");
    println!("http  listening on {http}");
    println!("whois listening on {whois}\n");

    let timeout = Duration::from_secs(5);
    let rdap_path = format!("/rdap/ip/{target}");
    for path in [
        "/healthz",
        rdap_path.as_str(),
        "/feed/transfers/ripencc.json",
        "/experiments/fig6.csv",
        "/metrics",
    ] {
        let resp = get_once(http, path, timeout).expect("request");
        let body = resp.text();
        let preview: String = body.lines().take(6).collect::<Vec<_>>().join("\n");
        println!("GET {path} → {}\n{preview}", resp.status);
        if body.lines().count() > 6 {
            println!("… ({} bytes total)", body.len());
        }
        println!();
    }

    // One classic port-43 exchange.
    let mut s = TcpStream::connect(whois).expect("connect whois");
    s.set_read_timeout(Some(timeout)).unwrap();
    s.write_all(format!("{target}\r\n").as_bytes()).unwrap();
    let mut out = String::new();
    s.read_to_string(&mut out).unwrap();
    println!("whois {target} →");
    for line in out.lines().take(8) {
        println!("{line}");
    }

    println!("\nshutting down (drain + join)…");
    server.shutdown();
    println!("done.");
}
