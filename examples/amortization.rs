//! Buy-vs-lease amortization calculator (§6).
//!
//! With no arguments, prints the paper's scenario grid. With three
//! arguments, computes one scenario:
//!
//! ```sh
//! cargo run --example amortization                    # scenario grid
//! cargo run --example amortization 22.50 0.75 0.05    # buy lease maint
//! ```

use market::amortization::amortization_months;
use std::env;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    match args.len() {
        0 => {
            let s6 = drywells::experiments::s6_amortization::run();
            println!("{}", s6.rendered);
            ExitCode::SUCCESS
        }
        3 => {
            let parse = |s: &str, what: &str| -> Option<f64> {
                match s.parse::<f64>() {
                    Ok(v) if v >= 0.0 => Some(v),
                    _ => {
                        eprintln!("invalid {what}: {s:?} (need a non-negative number)");
                        None
                    }
                }
            };
            let (Some(buy), Some(lease), Some(maint)) = (
                parse(&args[0], "buy price ($/IP)"),
                parse(&args[1], "lease price ($/IP/month)"),
                parse(&args[2], "maintenance ($/IP/month)"),
            ) else {
                return ExitCode::FAILURE;
            };
            match amortization_months(buy, lease, maint) {
                Some(months) => {
                    println!(
                        "buying ${buy:.2}/IP amortizes against a ${lease:.2}/IP/mo lease \
                         (maintenance ${maint:.3}/IP/mo) after {months:.1} months ({:.1} years)",
                        months / 12.0
                    );
                }
                None => {
                    println!(
                        "buying never amortizes: the lease rate (${lease:.2}) does not \
                         exceed the maintenance cost (${maint:.3})"
                    );
                }
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("usage: amortization [<buy $/IP> <lease $/IP/mo> <maintenance $/IP/mo>]");
            ExitCode::FAILURE
        }
    }
}
