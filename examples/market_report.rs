//! Market report: regenerate the paper's buy-market analyses —
//! Figure 1 (prices), Figure 2 (transfer volumes), Figure 3
//! (inter-RIR flows) — plus the §3 statistical claims.
//!
//! ```sh
//! cargo run --release --example market_report
//! ```

use drywells::experiments::{fig1, fig2, fig3};
use drywells::StudyConfig;

fn main() {
    let config = StudyConfig::quick();

    let f1 = fig1::run(&config);
    println!("=== Figure 1: price per IP (quarter × region × size) ===\n");
    // The full grid is long; print the consolidation-era rows plus the
    // statistical findings.
    for line in f1.rendered.lines() {
        if line.starts_with("quarter")
            || line.starts_with("-")
            || line.contains("2019")
            || line.contains("2020")
            || line.starts_with("regional test")
            || line.starts_with("consolidation")
        {
            println!("{line}");
        }
    }

    println!("\n=== Figure 2: market transfers per region ===\n");
    let f2 = fig2::run(&config);
    // Print the per-region market-start summary and 2019+ rows.
    for line in f2.rendered.lines() {
        if line.contains("first transfer") || line.contains("2019") || line.contains("2020") {
            println!("{line}");
        }
    }

    println!("\n=== Figure 3: inter-RIR transfers ===\n");
    let f3 = fig3::run(&config);
    println!("{}", f3.rendered);
}
