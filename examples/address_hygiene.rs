//! Address hygiene: the §2 "not all IP addresses are equal" story.
//!
//! A leasing provider's block hosts a spamming delegatee; we compare
//! the provider's residual reputation with and without SWIP-style
//! delegation records, and show what the listing does to the block's
//! market value.
//!
//! ```sh
//! cargo run --release --example address_hygiene
//! ```

use market::reputation::{residual_reputation, Blacklist, ListingReason, Reputation};
use nettypes::date::date;
use nettypes::prefix::pfx;

fn main() {
    let provider_block = pfx("185.120.0.0/16");
    let delegated = pfx("185.120.44.0/24");
    println!("provider holds {provider_block}, leases {delegated} to a customer\n");

    let mut blacklist = Blacklist::new();

    // The delegatee starts spamming in January and is listed.
    blacklist.list(delegated, date("2020-01-15"), ListingReason::Spam);
    println!("2020-01-15: {delegated} listed for spam");

    for (when, label) in [
        (date("2020-02-01"), "during the listing"),
        (date("2020-04-01"), "after delisting"),
    ] {
        if when == date("2020-04-01") {
            blacklist.delist(delegated, date("2020-03-01"));
            println!("\n2020-03-01: operator cleans up; block delisted");
        }
        println!("\n--- {label} ({when}) ---");
        for (records, desc) in [(vec![delegated], "with SWIP records"), (vec![], "without records")] {
            let rep = residual_reputation(&provider_block, &records, &blacklist, when);
            let value_per_ip = 22.50 * rep.price_multiplier();
            println!(
                "  {desc:<22} residual space is {:?} → market value ${value_per_ip:.2}/IP",
                rep
            );
        }
        let delegated_rep = blacklist.reputation(&delegated, when);
        println!(
            "  the delegated /24 itself:  {:?} → ${:.2}/IP{}",
            delegated_rep,
            22.50 * delegated_rep.price_multiplier(),
            if delegated_rep == Reputation::Tainted {
                " (tainted forever — 'it can be hard to remove it again')"
            } else {
                ""
            }
        );
    }

    println!(
        "\nthis is why leasing providers vet customers and install SWIP records (§2),\n\
         and why buyers run reputation checks before acquiring blocks."
    );
}
