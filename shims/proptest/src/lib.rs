//! Offline stand-in for `proptest`.
//!
//! Runs each property over a deterministic stream of generated cases
//! (seeded from the test's name, so failures reproduce run-over-run).
//! Supports the combinators the workspace uses — range and `any`
//! strategies, tuples, `prop_map`, `collection::vec`,
//! `sample::select`, `option::of` — and the `proptest!` /
//! `prop_assert*!` / `prop_assume!` macros. No shrinking: the failing
//! case is reported as-is.

/// Number of cases each property runs.
pub const NUM_CASES: u32 = 64;

/// Deterministic generator (SplitMix64) used to drive strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name so each property has a stable stream.
    pub fn deterministic(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Unbiased draw from `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let zone = bound.wrapping_mul(u64::MAX / bound);
        loop {
            let v = self.next_u64();
            if zone == 0 || v < zone {
                return v % bound;
            }
        }
    }

    /// Uniform in [0, 1) with 53 bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// A `prop_assert*!` failed; the property is falsified.
    Fail(String),
    /// A `prop_assume!` rejected the inputs; try another case.
    Reject(String),
}

/// Result type the property bodies produce.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ------------------------------------------------------------- any::<T>()

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw from the full domain of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

/// Strategy for the full domain of `T` (see [`any`]).
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

// --------------------------------------------------------- range strategies

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + (hi - lo) * rng.unit_f64()
    }
}

// ------------------------------------------------------- regex strategies

/// One regex atom: a set of candidate chars plus a repetition range.
struct RegexPiece {
    choices: Vec<char>,
    min: usize,
    max: usize,
}

/// Parse the regex subset used as string strategies: literals,
/// character classes (`[A-Z0-9-]`), `\d`/`\w`/escapes, `.`, and the
/// quantifiers `{m}`, `{m,n}`, `*`, `+`, `?`. Groups and alternation
/// are not supported.
fn parse_regex(pattern: &str) -> Vec<RegexPiece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let choices: Vec<char> = match chars[i] {
            '[' => {
                i += 1;
                assert!(
                    chars.get(i) != Some(&'^'),
                    "negated classes unsupported in regex strategy {pattern:?}"
                );
                let mut set = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    if chars[i + 1..].first() == Some(&'-') && chars.get(i + 2).is_some_and(|c| *c != ']') {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        set.extend((lo..=hi).filter(|c| c.is_ascii()));
                        i += 3;
                    } else {
                        set.push(chars[i]);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in {pattern:?}");
                i += 1; // past ']'
                set
            }
            '\\' => {
                i += 1;
                let c = chars.get(i).copied().expect("dangling backslash");
                i += 1;
                match c {
                    'd' => ('0'..='9').collect(),
                    'w' => ('a'..='z')
                        .chain('A'..='Z')
                        .chain('0'..='9')
                        .chain(std::iter::once('_'))
                        .collect(),
                    other => vec![other],
                }
            }
            '.' => {
                i += 1;
                (' '..='~').collect()
            }
            '(' | ')' | '|' => {
                panic!("groups/alternation unsupported in regex strategy {pattern:?}")
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        // Optional quantifier.
        let (min, max) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..].iter().position(|&c| c == '}').expect("unterminated {}") + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                if let Some((lo, hi)) = body.split_once(',') {
                    (lo.trim().parse().unwrap(), hi.trim().parse().unwrap())
                } else {
                    let n: usize = body.trim().parse().unwrap();
                    (n, n)
                }
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            _ => (1, 1),
        };
        pieces.push(RegexPiece { choices, min, max });
    }
    pieces
}

/// String strategies from regex-like patterns, as in real proptest:
/// `"[A-Z][A-Z0-9-]{0,12}" `generates matching strings.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse_regex(self) {
            let span = (piece.max - piece.min) as u64;
            let n = piece.min + if span == 0 { 0 } else { rng.below(span + 1) as usize };
            for _ in 0..n {
                out.push(piece.choices[rng.below(piece.choices.len() as u64) as usize]);
            }
        }
        out
    }
}

// ---------------------------------------------------------------- tuples

macro_rules! tuple_strategy {
    ($($S:ident/$v:ident),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($v,)+) = self;
                ($($v.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A / a, B / b);
tuple_strategy!(A / a, B / b, C / c);
tuple_strategy!(A / a, B / b, C / c, D / d);
tuple_strategy!(A / a, B / b, C / c, D / d, E / e);
tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F2 / f2);
tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F2 / f2, G / g);
tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F2 / f2, G / g, H / h);

// ------------------------------------------------------------- collections

/// Size specification for collection strategies.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

/// `proptest::collection` — vector strategies.
pub mod collection {
    use super::*;

    /// Strategy producing `Vec`s of `element` with a size in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors from an element strategy.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let n = self.size.lo + if span == 0 { 0 } else { rng.below(span + 1) as usize };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `proptest::sample` — choose among concrete values.
pub mod sample {
    use super::*;

    /// Strategy picking uniformly from a fixed list.
    pub struct Select<T: Clone> {
        items: Vec<T>,
    }

    /// Pick one of `items` per case.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select requires at least one item");
        Select { items }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.items[rng.below(self.items.len() as u64) as usize].clone()
        }
    }
}

/// `proptest::option` — optional values.
pub mod option {
    use super::*;

    /// Strategy producing `None` about a quarter of the time.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Wrap a strategy in `Option`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

// ---------------------------------------------------------------- macros

/// Define `#[test]` functions whose arguments are drawn from
/// strategies, each run for [`NUM_CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __pt_rng = $crate::TestRng::deterministic(stringify!($name));
                let mut __pt_case: u32 = 0;
                let mut __pt_attempts: u32 = 0;
                while __pt_case < $crate::NUM_CASES {
                    __pt_attempts += 1;
                    if __pt_attempts > $crate::NUM_CASES * 20 {
                        panic!("proptest: too many rejected cases in {}", stringify!($name));
                    }
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __pt_rng);)+
                    let __pt_result: $crate::TestCaseResult = (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    match __pt_result {
                        Ok(()) => { __pt_case += 1; }
                        Err($crate::TestCaseError::Reject(_)) => {}
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "property {} falsified at case {}: {}",
                                stringify!($name), __pt_case, msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Assert a condition inside a property; failure falsifies the case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err($crate::TestCaseError::Fail(
                format!("{} != {}: {:?} vs {:?}", stringify!($left), stringify!($right), l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l == r {
            return Err($crate::TestCaseError::Fail(
                format!("{} == {}: {:?}", stringify!($left), stringify!($right), l),
            ));
        }
    }};
}

/// Reject the current case (inputs don't satisfy a precondition).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        Just, Strategy, TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 0u32..10, y in -3i64..=3, f in 0.5f64..1.5) {
            prop_assert!(x < 10);
            prop_assert!((-3..=3).contains(&y));
            prop_assert!((0.5..1.5).contains(&f));
        }

        #[test]
        fn combinators_work(
            v in crate::collection::vec((any::<u32>(), 1u8..=4).prop_map(|(a, b)| a as u64 + b as u64), 1..8),
            pick in crate::sample::select(vec![10u8, 20, 30]),
            opt in crate::option::of(any::<u16>()),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(pick % 10 == 0);
            let _ = opt;
        }

        #[test]
        fn regex_strings_match(s in "[A-Z][A-Z0-9-]{0,12}") {
            prop_assert!(!s.is_empty() && s.len() <= 13);
            prop_assert!(s.chars().next().unwrap().is_ascii_uppercase());
            prop_assert!(s.chars().all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '-'));
        }

        #[test]
        fn assume_rejects(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    #[should_panic(expected = "falsified")]
    fn failing_property_panics() {
        proptest! {
            fn inner(x in 0u32..10) {
                prop_assert!(x < 5, "x was {}", x);
            }
        }
        inner();
    }
}
