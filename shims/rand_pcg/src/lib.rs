//! Offline stand-in for `rand_pcg`, implementing the genuine
//! PCG XSL-RR 128/64 (MCG) algorithm — a 128-bit multiplicative
//! congruential state with an xorshift-low + random-rotate output —
//! so the simulation keeps real PCG statistical quality.

use rand::{RngCore, SeedableRng};

const MULTIPLIER: u128 = 0x2360_ED05_1FC6_5DA4_4385_DF64_9FCC_F645;

/// PCG XSL-RR 128/64 with MCG state transition (`Mcg128Xsl64`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Pcg64Mcg {
    state: u128,
}

/// Alias used by upstream `rand_pcg`.
pub type Mcg128Xsl64 = Pcg64Mcg;

impl Pcg64Mcg {
    /// Build from raw state. MCG state must be odd; the low bit is forced.
    pub fn new(state: u128) -> Pcg64Mcg {
        Pcg64Mcg { state: state | 1 }
    }
}

fn output_xsl_rr(state: u128) -> u64 {
    let rot = (state >> 122) as u32;
    let xsl = ((state >> 64) as u64) ^ (state as u64);
    xsl.rotate_right(rot)
}

impl RngCore for Pcg64Mcg {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_mul(MULTIPLIER);
        output_xsl_rr(self.state)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for Pcg64Mcg {
    /// Expand a 64-bit seed to the 128-bit state with SplitMix64,
    /// the same seed-stretching scheme `rand` uses.
    fn seed_from_u64(seed: u64) -> Pcg64Mcg {
        let mut sm = seed;
        let lo = splitmix64(&mut sm) as u128;
        let hi = splitmix64(&mut sm) as u128;
        Pcg64Mcg::new((hi << 64) | lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Pcg64Mcg::seed_from_u64(42);
        let mut b = Pcg64Mcg::seed_from_u64(42);
        let mut c = Pcg64Mcg::seed_from_u64(43);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn uniformity_smoke() {
        // Mean of 10k uniform draws should sit near 0.5 and each of
        // ten deciles should be populated — a coarse sanity screen.
        let mut rng = Pcg64Mcg::seed_from_u64(7);
        let mut sum = 0.0;
        let mut deciles = [0u32; 10];
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            sum += x;
            deciles[(x * 10.0) as usize % 10] += 1;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        assert!(deciles.iter().all(|&d| d > 800), "{deciles:?}");
    }
}
