//! Offline stand-in for `serde`.
//!
//! The workspace cannot reach crates.io, so this crate provides the
//! two marker traits and re-exports the no-op derives. Code that only
//! *derives* `Serialize`/`Deserialize` compiles unchanged; the places
//! that genuinely need JSON use the hand-written conversions in the
//! `serde_json` shim instead.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize {}

pub use serde_derive::{Deserialize, Serialize};

macro_rules! mark {
    ($($t:ty),* $(,)?) => {
        $(impl Serialize for $t {} impl Deserialize for $t {})*
    };
}

mark!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);
mark!(f32, f64, bool, char, String, &str);

impl<T: Serialize> Serialize for Vec<T> {}
impl<T: Deserialize> Deserialize for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<T: Deserialize> Deserialize for Option<T> {}
impl<T: Serialize> Serialize for Box<T> {}
impl<T: Deserialize> Deserialize for Box<T> {}
impl<T: Serialize> Serialize for &T {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {}
impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {}
impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {}
impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {}
impl<K: Deserialize, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {}
impl<K: Serialize, V: Serialize> Serialize for std::collections::HashMap<K, V> {}
impl<K: Deserialize, V: Deserialize> Deserialize for std::collections::HashMap<K, V> {}
