//! Offline stand-in for `criterion`.
//!
//! Same macro and type surface (`criterion_group!`, `criterion_main!`,
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher`], [`BenchmarkId`]),
//! backed by a small adaptive wall-clock timer: each benchmark is
//! warmed up, iteration count is scaled to a ~50 ms budget, and the
//! mean per-iteration time is printed. No statistical analysis or
//! HTML reports.

use std::time::{Duration, Instant};

/// Target measurement budget per benchmark.
const BUDGET: Duration = Duration::from_millis(50);

/// Runs one benchmark body repeatedly and records timing.
pub struct Bencher {
    /// Mean per-iteration time of the measured run.
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `f`, adaptively choosing an iteration count.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up & calibration: one timed call decides the batch size.
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (BUDGET.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        let t1 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        self.elapsed = t1.elapsed() / iters as u32;
        self.iters = iters;
    }
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id from a function name and parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Build an id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

fn report(name: &str, b: &Bencher) {
    let ns = b.elapsed.as_nanos();
    let human = if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    };
    println!("bench {name:<55} {human:>12}  ({} iters)", b.iters);
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, mut f: F) {
    let mut b = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    report(name, &b);
}

/// A named cluster of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Benchmark a closure under `group/name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), f);
        self
    }

    /// Benchmark a closure with an explicit input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    /// Accepted for API compatibility; sampling is adaptive here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Finish the group (no-op; groups report as they run).
    pub fn finish(self) {}
}

/// Benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Benchmark a closure under `name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, f);
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }
}

/// Declare a group-runner function invoking each target with a fresh
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declare `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_smoke() {
        let mut c = Criterion::default();
        c.bench_function("smoke/add", |b| b.iter(|| std::hint::black_box(1u64 + 1)));
        let mut g = c.benchmark_group("smoke");
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &n| {
            b.iter(|| std::hint::black_box(n * n))
        });
        g.finish();
    }
}
