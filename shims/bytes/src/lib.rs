//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset the workspace relies on: a cheaply-clonable
//! immutable [`Bytes`] buffer, a growable [`BytesMut`] builder, the
//! big-endian cursor reads of [`Buf`] for `&[u8]`, and the big-endian
//! appends of [`BufMut`] for `BytesMut`.

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// Immutable, cheaply clonable byte buffer (shared via `Arc`).
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { data: data.into() }
    }

    /// Wrap a static slice (copied; zero-copy sharing is not needed here).
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl From<BytesMut> for Bytes {
    fn from(v: BytesMut) -> Bytes {
        v.freeze()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.data[..] == *other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.data.hash(state)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    // The copy is required: an owned iterator cannot borrow from the
    // Arc'd slice it consumes.
    #[allow(clippy::unnecessary_to_owned)]
    fn into_iter(self) -> Self::IntoIter {
        self.data.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

/// Growable byte buffer used to build wire images.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Append raw bytes.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Finish building and share the result.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> BytesMut {
        BytesMut { data: v }
    }
}

/// Cursor-style big-endian reads. Implemented for `&[u8]`, which
/// advances in place like the real crate.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread portion.
    fn chunk(&self) -> &[u8];
    /// Skip `cnt` bytes. Panics if fewer remain (matches `bytes`).
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Read a big-endian u16.
    fn get_u16(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        raw.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_be_bytes(raw)
    }

    /// Read a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(raw)
    }

    /// Read a big-endian u64.
    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(raw)
    }

    /// Read a big-endian i64.
    fn get_i64(&mut self) -> i64 {
        self.get_u64() as i64
    }

    /// Read exactly `dst.len()` bytes.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        // Rarely used on Bytes in this workspace; copy the tail.
        let rest = self.data[cnt..].to_vec();
        self.data = rest.into();
    }
}

/// Big-endian appends. Implemented for `BytesMut` and `Vec<u8>`.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian i64.
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_ints() {
        let mut b = BytesMut::new();
        b.put_u8(0xAB);
        b.put_u16(0x1234);
        b.put_u32(0xDEAD_BEEF);
        b.put_i64(-42);
        b.put_slice(b"xyz");
        let frozen = b.freeze();
        let mut cur: &[u8] = &frozen;
        assert_eq!(cur.get_u8(), 0xAB);
        assert_eq!(cur.get_u16(), 0x1234);
        assert_eq!(cur.get_u32(), 0xDEAD_BEEF);
        assert_eq!(cur.get_i64(), -42);
        assert_eq!(cur.remaining(), 3);
        cur.advance(1);
        assert_eq!(cur, b"yz");
    }

    #[test]
    fn bytes_sharing() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(&a[..], &[1, 2, 3]);
        assert_eq!(Bytes::from_static(b"abc").len(), 3);
    }
}
