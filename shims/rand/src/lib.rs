//! Offline stand-in for the `rand` crate.
//!
//! Provides the trait surface the workspace uses — [`RngCore`],
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`]
//! (`seed_from_u64`) and [`SliceRandom`] (`choose`,
//! `choose_multiple`) — with unbiased integer range sampling
//! (rejection below the largest multiple of the span) and 53-bit
//! uniform floats, matching the statistical behaviour the simulation
//! bands were tuned against.

/// Source of raw random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit word (top half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types drawable from the "standard" distribution via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Unbiased draw from `[0, bound)` by rejecting draws beyond the
/// largest exact multiple of `bound`.
fn u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let zone = bound.wrapping_mul(u64::MAX / bound);
    loop {
        let v = rng.next_u64();
        if zone == 0 || v < zone {
            return v % bound;
        }
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range. Panics on empty ranges.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = u64_below(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let off = u64_below(rng, span + 1);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + (hi - lo) * f64::sample(rng)
    }
}

// Note: no `Range<f32>` impl — float literals in `gen_range(-2.0..2.0)`
// must resolve unambiguously to f64.

/// Convenience methods layered over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draw from the standard distribution (`u64` words, 53-bit `f64`s).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform draw from an integer or float range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Random selection from slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// A uniformly random element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// `amount` distinct elements (fewer if the slice is shorter), in
    /// selection order.
    fn choose_multiple<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> std::vec::IntoIter<&Self::Item>;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[u64_below(rng, self.len() as u64) as usize])
        }
    }

    fn choose_multiple<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> std::vec::IntoIter<&T> {
        // Partial Fisher–Yates over an index vector.
        let n = self.len();
        let amount = amount.min(n);
        let mut idx: Vec<usize> = (0..n).collect();
        let mut picked = Vec::with_capacity(amount);
        for i in 0..amount {
            let j = i + u64_below(rng, (n - i) as u64) as usize;
            idx.swap(i, j);
            picked.push(&self[idx[i]]);
        }
        picked.into_iter()
    }

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = u64_below(rng, (i + 1) as u64) as usize;
            self.swap(i, j);
        }
    }
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::{Rng, RngCore, SampleRange, SeedableRng, SliceRandom, Standard};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..2000 {
            let a = rng.gen_range(0..10u32);
            assert!(a < 10);
            let b = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&b));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = Counter(1);
        let items = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[*items.choose(&mut rng).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let picked: Vec<usize> = items.choose_multiple(&mut rng, 3).copied().collect();
        assert_eq!(picked.len(), 3);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3, "choose_multiple must be distinct");
    }
}
