//! No-op `Serialize` / `Deserialize` derives.
//!
//! The workspace builds in a hermetic environment with no crates.io
//! access, so the real `serde_derive` cannot be fetched. The code base
//! only relies on the derives as markers (the two call sites that
//! actually produce/consume JSON use hand-written conversions in the
//! `serde_json` shim), so the derives here expand to empty marker-trait
//! impls. `#[serde(...)]` helper attributes are accepted and ignored.

use proc_macro::{TokenStream, TokenTree};

/// Extract `(name, generics-intro, generics-use, where-ish bound list)`
/// from an item definition token stream. We keep this deliberately
/// simple: emit `impl<GENERICS> Trait for Name<GENERICS>` with every
/// type parameter bound by the trait, which is what serde itself does.
fn parse_item(input: TokenStream) -> Option<(String, Vec<String>)> {
    let mut tokens = input.into_iter().peekable();
    // Scan for the `struct` / `enum` keyword, skipping attributes,
    // doc-comments and visibility.
    let mut name = None;
    while let Some(tok) = tokens.next() {
        if let TokenTree::Ident(id) = &tok {
            let s = id.to_string();
            if s == "struct" || s == "enum" || s == "union" {
                if let Some(TokenTree::Ident(n)) = tokens.next() {
                    name = Some(n.to_string());
                }
                break;
            }
        }
    }
    let name = name?;
    // Collect type/lifetime parameter names from `<...>` if present.
    let mut params = Vec::new();
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            tokens.next();
            let mut depth = 1i32;
            let mut expect_name = true;
            while let Some(tok) = tokens.next() {
                match &tok {
                    TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                    TokenTree::Punct(p) if p.as_char() == '>' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                        expect_name = true;
                    }
                    TokenTree::Punct(p) if p.as_char() == ':' && depth == 1 => {
                        expect_name = false; // skip bounds
                    }
                    TokenTree::Punct(p) if p.as_char() == '\'' && depth == 1 && expect_name => {
                        // Lifetime parameter: grab the following ident.
                        if let Some(TokenTree::Ident(id)) = tokens.next() {
                            params.push(format!("'{id}"));
                        }
                        expect_name = false;
                    }
                    TokenTree::Ident(id) if depth == 1 && expect_name => {
                        let s = id.to_string();
                        if s == "const" {
                            continue; // const generics: next ident is the name
                        }
                        params.push(s);
                        expect_name = false;
                    }
                    _ => {}
                }
            }
        }
    }
    Some((name, params))
}

fn derive_marker(input: TokenStream, trait_path: &str) -> TokenStream {
    let Some((name, params)) = parse_item(input) else {
        return TokenStream::new();
    };
    let impl_code = if params.is_empty() {
        format!("impl {trait_path} for {name} {{}}")
    } else {
        let intro: Vec<String> = params
            .iter()
            .map(|p| {
                if p.starts_with('\'') {
                    p.clone()
                } else {
                    format!("{p}: {trait_path}")
                }
            })
            .collect();
        format!(
            "impl<{}> {trait_path} for {name}<{}> {{}}",
            intro.join(", "),
            params.join(", ")
        )
    };
    impl_code.parse().unwrap_or_default()
}

/// Derive a no-op `serde::Serialize` marker impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    derive_marker(input, "::serde::Serialize")
}

/// Derive a no-op `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    derive_marker(input, "::serde::Deserialize")
}
