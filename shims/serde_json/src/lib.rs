//! Offline stand-in for `serde_json`.
//!
//! Provides a real (if small) JSON implementation: a [`Value`] tree,
//! a strict parser, compact and pretty printers, and the [`ToJson`] /
//! [`FromJson`] conversion traits that replace serde's derive-based
//! reflection. Types that need JSON I/O implement the two traits by
//! hand; the free functions ([`to_string`], [`to_string_pretty`],
//! [`from_str`], [`from_value`], [`to_value`]) mirror serde_json's
//! call signatures so call sites compile unchanged.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON document.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as f64; integers up to 2^53 are exact).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with sorted keys (deterministic output).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member access: `value["key"]`, returning `Null` for misses —
    /// same ergonomics as serde_json's `Index`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric content, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric content as i64, if integral.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 => {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    /// The boolean content, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array content, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The object content, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(v) => v.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// A JSON error (parse failure or a shape mismatch during conversion).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Construct an error with a message — the hook custom `FromJson`
    /// impls use to report shape mismatches.
    pub fn msg(m: impl Into<String>) -> Error {
        Error { msg: m.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

// ---------------------------------------------------------------- printing

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn number_to_string(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&number_to_string(*n)),
        Value::String(s) => escape_into(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(k, out);
                out.push(':');
                write_compact(val, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(map) if !map.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                escape_into(k, out);
                out.push_str(": ");
                write_pretty(val, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        write_compact(self, &mut s);
        f.write_str(&s)
    }
}

// ---------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.keyword("null", Value::Null),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::msg(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error::msg(format!("bad literal at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::msg("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::msg("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::msg("bad \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::msg("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::msg("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for our data;
                            // map unpaired surrogates to the replacement char.
                            out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(Error::msg("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode UTF-8 from the byte stream.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error::msg("truncated UTF-8"))?;
                    let s =
                        std::str::from_utf8(chunk).map_err(|_| Error::msg("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("bad number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error::msg(format!("bad number {text:?}")))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::msg("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error::msg("expected ',' or '}'")),
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Parse a JSON document into a [`Value`].
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

// ---------------------------------------------------------- conversion traits

/// Convert a value into a JSON tree (replaces `serde::Serialize` for
/// the handful of types that genuinely emit JSON).
pub trait ToJson {
    /// Build the JSON representation.
    fn to_json(&self) -> Value;
}

/// Build a value from a JSON tree (replaces `serde::Deserialize`).
pub trait FromJson: Sized {
    /// Parse from the JSON representation.
    fn from_json(v: &Value) -> Result<Self, Error>;
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl FromJson for Value {
    fn from_json(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Value {
        Value::String((*self).to_string())
    }
}

impl FromJson for String {
    fn from_json(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::msg("expected string"))
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::msg("expected bool"))
    }
}

macro_rules! json_num {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Value) -> Result<Self, Error> {
                v.as_f64()
                    .map(|n| n as $t)
                    .ok_or_else(|| Error::msg("expected number"))
            }
        }
    )*};
}

json_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::msg("expected array"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(t) => t.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Value) -> Result<Self, Error> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_json(v).map(Some)
        }
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (*self).to_json()
    }
}

// ---------------------------------------------------------------- facade fns

/// Render compact JSON.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&value.to_json(), &mut out);
    Ok(out)
}

/// Render human-readable JSON (two-space indent, serde_json style).
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_json(), 0, &mut out);
    Ok(out)
}

/// Parse a typed value from JSON text.
pub fn from_str<T: FromJson>(s: &str) -> Result<T, Error> {
    T::from_json(&parse(s)?)
}

/// Convert a JSON tree into a typed value.
pub fn from_value<T: FromJson>(v: Value) -> Result<T, Error> {
    T::from_json(&v)
}

/// Convert a typed value into a JSON tree.
pub fn to_value<T: ToJson>(value: T) -> Result<Value, Error> {
    Ok(value.to_json())
}

/// Build a [`Value`] with JSON-ish literal syntax. Supports the forms
/// the workspace uses: objects with string keys, arrays, and arbitrary
/// `ToJson` expressions as values.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:tt : $val:expr),* $(,)? }) => {{
        let mut map = ::std::collections::BTreeMap::new();
        $( map.insert($key.to_string(), $crate::ToJson::to_json(&$val)); )*
        $crate::Value::Object(map)
    }};
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $($crate::ToJson::to_json(&$item)),* ])
    };
    ($other:expr) => { $crate::ToJson::to_json(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_basic() {
        let v = json!({
            "name": "drywells",
            "count": 3u32,
            "items": vec![1u32, 2, 3],
            "flag": true,
        });
        let text = to_string(&v).unwrap();
        assert_eq!(parse(&text).unwrap(), v);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(parse(&pretty).unwrap(), v);
        assert!(pretty.contains("\"name\": \"drywells\""));
    }

    #[test]
    fn index_misses_are_null() {
        let v = json!({ "a": 1u32 });
        assert!(v["missing"].is_null());
        assert_eq!(v["a"].as_i64(), Some(1));
    }

    #[test]
    fn escapes() {
        let v = Value::String("a\"b\\c\nd".into());
        let text = to_string(&v).unwrap();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("{} trailing").is_err());
    }
}
