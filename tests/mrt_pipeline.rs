//! Integration: run the delegation pipeline from a genuine MRT
//! archive (TABLE_DUMP_V2 RIBs + BGP4MP update files) and compare
//! with the direct-rendering input path.

use bgpsim::updates::{ArchiveV2Config, CollectorArchiveV2};
use bytes::Bytes;
use delegation::config::InferenceConfig;
use delegation::eval::evaluate_against_truth;
use delegation::pipeline::{run_pipeline, PipelineInput};
use drywells::experiments::build_bgp_study;
use drywells::StudyConfig;
use nettypes::date::date;

#[test]
fn mrt_pipeline_close_to_direct_rendering() {
    let study = build_bgp_study(&StudyConfig::quick_seeded(14));
    let span = study.world.span;
    let archive = CollectorArchiveV2::generate(
        &study.world,
        study.visibility_model(),
        span,
        &ArchiveV2Config::default(),
    )
    .expect("archive encodes");

    let cfg = InferenceConfig::extended();
    let direct = run_pipeline(
        PipelineInput::Days(&study.days),
        span,
        &cfg,
        Some(&study.as2org),
    );
    let via_mrt = run_pipeline(
        PipelineInput::MrtArchive(&archive),
        span,
        &cfg,
        Some(&study.as2org),
    );

    // Same days, no gaps.
    assert_eq!(via_mrt.days.len(), direct.days.len());
    assert!(via_mrt.missing_days.is_empty());
    assert!(via_mrt.fallback_days.is_empty());

    // Quality must match or beat the direct path. Exact equality is
    // not expected: the MRT layer enforces one best path per (peer,
    // prefix) — as real collectors do — so a transient MOAS conflict
    // splits the monitor count between the two origins and the
    // minority origin falls below the visibility threshold, leaving
    // the prefix usable; the rendering layer instead reports both
    // origins at full strength and step (iii) drops the prefix. The
    // best-path model is the more faithful of the two, so the MRT
    // path may only *gain* recall.
    let e_direct = evaluate_against_truth(&study.world, &direct);
    let e_mrt = evaluate_against_truth(&study.world, &via_mrt);
    assert!(
        e_mrt.recall() >= e_direct.recall() - 0.02,
        "recall: direct {:.3} vs MRT {:.3}",
        e_direct.recall(),
        e_mrt.recall()
    );
    assert!(
        e_mrt.precision() > 0.9,
        "MRT-path precision {:.3}",
        e_mrt.precision()
    );
}

#[test]
fn mrt_pipeline_survives_archive_damage() {
    let study = build_bgp_study(&StudyConfig::quick_seeded(15));
    let span = study.world.span;
    let mut archive = CollectorArchiveV2::generate(
        &study.world,
        study.visibility_model(),
        span,
        &ArchiveV2Config {
            rib_every_days: 7,
            ..Default::default()
        },
    )
    .expect("archive encodes");
    // Remove two update files and corrupt a third.
    assert!(archive.drop_update_file(date("2018-01-20")));
    assert!(archive.drop_update_file(date("2018-02-14")));
    let damaged = archive.update_bytes(date("2018-03-02")).unwrap().clone();
    let mut v = damaged.to_vec();
    v.truncate(v.len() / 2);
    archive.corrupt_update_file(date("2018-03-02"), Bytes::from(v));

    let result = run_pipeline(
        PipelineInput::MrtArchive(&archive),
        span,
        &InferenceConfig::extended(),
        Some(&study.as2org),
    );
    // Fallback days were used but every day produced data.
    assert!(result.missing_days.is_empty());
    let eval = evaluate_against_truth(&study.world, &result);
    assert!(
        eval.recall() > 0.65,
        "damaged-archive recall {:.3}",
        eval.recall()
    );
    assert!(
        eval.precision() > 0.9,
        "damaged-archive precision {:.3}",
        eval.precision()
    );
}
