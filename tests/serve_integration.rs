//! Integration: the full TCP serving lifecycle over loopback sockets.
//!
//! Covers the serving layer's contract end to end: concurrent clients
//! get correct RDAP JSON (including `parentHandle`), over-budget
//! clients get 429 with `Retry-After`, connections beyond the cap are
//! shed with 503 (never queued unboundedly), the port-43 WHOIS
//! listener speaks the hierarchy flags over a real socket, and
//! graceful shutdown drains in-flight requests and joins every worker.

use drywells::StudyConfig;
use nettypes::date::date;
use rdap::database::WhoisDb;
use rdap::inetnum::{Inetnum, InetnumStatus};
use registry::org::OrgId;
use registry::rir::Rir;
use registry::transfer::{Transfer, TransferKind, TransferLog};
use serve::client::{get_once, Client};
use serve::rate::RateLimitConfig;
use serve::{App, Server, ServerConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

fn test_db() -> WhoisDb {
    let mut db = WhoisDb::new();
    let mk = |r: &str, status, name: &str| Inetnum {
        range: r.parse().unwrap(),
        netname: name.into(),
        status,
        org: format!("ORG-{name}"),
        admin_c: format!("AC-{name}"),
        created: date("2018-01-01"),
    };
    db.insert(mk("10.0.0.0 - 10.255.255.255", InetnumStatus::AllocatedPa, "TOP"));
    db.insert(mk("10.0.0.0 - 10.0.255.255", InetnumStatus::SubAllocatedPa, "MID"));
    db.insert(mk("10.0.1.0 - 10.0.1.255", InetnumStatus::AssignedPa, "LEAF-A"));
    db.insert(mk("10.0.2.0 - 10.0.2.255", InetnumStatus::AssignedPa, "LEAF-B"));
    db
}

fn test_log() -> TransferLog {
    let mut log = TransferLog::new();
    log.push(Transfer {
        date: date("2020-01-01"),
        prefix: "1.0.0.0/24".parse().unwrap(),
        from_org: OrgId(1),
        to_org: OrgId(2),
        source_rir: Rir::Arin,
        dest_rir: Rir::RipeNcc,
        kind: Some(TransferKind::Market),
    });
    log
}

fn test_app(rate_limit: Option<RateLimitConfig>) -> App {
    App::from_parts(test_db(), &test_log(), StudyConfig::quick(), rate_limit)
}

fn quick_config() -> ServerConfig {
    ServerConfig {
        read_timeout: Duration::from_millis(300),
        write_timeout: Duration::from_millis(300),
        ..ServerConfig::default()
    }
}

const TIMEOUT: Duration = Duration::from_secs(5);

#[test]
fn concurrent_clients_get_correct_rdap_json_and_shutdown_drains() {
    let server = Server::start(test_app(None), quick_config()).unwrap();
    let addr = server.http_addr();

    std::thread::scope(|s| {
        for _ in 0..8 {
            s.spawn(move || {
                let mut client = Client::new(addr, TIMEOUT);
                for _ in 0..10 {
                    let leaf = client.get("/rdap/ip/10.0.1.77").unwrap();
                    assert_eq!(leaf.status, 200);
                    let body = leaf.text();
                    assert!(body.contains("\"objectClassName\": \"ip network\""), "{body}");
                    assert!(body.contains("\"name\": \"LEAF-A\""), "{body}");
                    // The covering MID object is the RDAP parent.
                    assert!(
                        body.contains("\"parentHandle\": \"SIM-NET-0A000000-0A00FFFF\""),
                        "{body}"
                    );
                    let top = client.get("/rdap/ip/10.128.0.1").unwrap();
                    assert_eq!(top.status, 200);
                    assert!(!top.text().contains("parentHandle"));
                    let miss = client.get("/rdap/ip/192.0.2.1").unwrap();
                    assert_eq!(miss.status, 404);
                }
            });
        }
    });

    let metrics = get_once(addr, "/metrics", TIMEOUT).unwrap().text();
    let count = |name: &str| -> u64 {
        metrics
            .lines()
            .find_map(|l| l.strip_prefix(name))
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or_else(|| panic!("{name} missing from:\n{metrics}"))
    };
    assert!(count("serve_requests_total ") >= 240, "{metrics}");
    assert_eq!(count("serve_responses_404_total "), 80, "{metrics}");
    assert!(count("serve_accepted_total ") >= 9, "{metrics}");

    // Graceful shutdown joins every thread without a panic or leak.
    server.shutdown();
}

#[test]
fn over_budget_clients_get_429_with_retry_after() {
    let app = test_app(Some(RateLimitConfig {
        burst: 3,
        per_second: 0.01, // effectively no refill inside the test
    }));
    let server = Server::start(app, quick_config()).unwrap();
    let mut client = Client::new(server.http_addr(), TIMEOUT);
    for _ in 0..3 {
        assert_eq!(client.get("/rdap/ip/10.0.1.1").unwrap().status, 200);
    }
    let limited = client.get("/rdap/ip/10.0.1.1").unwrap();
    assert_eq!(limited.status, 429);
    let retry: u64 = limited
        .header("retry-after")
        .expect("Retry-After header present")
        .parse()
        .unwrap();
    assert!(retry >= 1);
    // The budget only guards RDAP; operational routes stay reachable.
    assert_eq!(client.get("/healthz").unwrap().status, 200);
    server.shutdown();
}

#[test]
fn connections_beyond_the_cap_are_shed_with_503() {
    let config = ServerConfig {
        workers: 1,
        max_connections: 1,
        read_timeout: Duration::from_secs(2),
        write_timeout: Duration::from_secs(2),
        ..ServerConfig::default()
    };
    let server = Server::start(test_app(None), config).unwrap();
    let addr = server.http_addr();

    // One silent connection occupies the only slot (the worker sits in
    // read until data or timeout).
    let holder = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(100));

    // The next connection must be refused *immediately* with 503 —
    // shedding, not unbounded queueing.
    let shed = get_once(addr, "/healthz", TIMEOUT).unwrap();
    assert_eq!(shed.status, 503);
    assert_eq!(shed.header("retry-after"), Some("1"));
    assert_eq!(shed.header("connection"), Some("close"));

    // The in-slot connection is still fully served.
    let mut holder = holder;
    holder.set_read_timeout(Some(TIMEOUT)).unwrap();
    holder
        .write_all(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut resp = String::new();
    holder.read_to_string(&mut resp).unwrap();
    assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");

    // The slot is released a hair *after* the holder sees EOF, so a
    // raced /metrics connection may itself be shed — retry briefly,
    // then assert on the counter's value rather than an exact render.
    let mut metrics = get_once(addr, "/metrics", TIMEOUT).unwrap();
    for _ in 0..50 {
        if metrics.status == 200 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
        metrics = get_once(addr, "/metrics", TIMEOUT).unwrap();
    }
    assert_eq!(metrics.status, 200);
    let text = metrics.text();
    let shed_total: u64 = text
        .lines()
        .find_map(|l| l.strip_prefix("serve_responses_503_total "))
        .expect("503 counter rendered")
        .trim()
        .parse()
        .unwrap();
    assert!(shed_total >= 1, "{text}");
    server.shutdown();
}

#[test]
fn graceful_shutdown_serves_already_queued_requests() {
    let config = ServerConfig {
        workers: 1,
        max_connections: 8,
        read_timeout: Duration::from_millis(300),
        write_timeout: Duration::from_millis(300),
        ..ServerConfig::default()
    };
    let server = Server::start(test_app(None), config).unwrap();
    let addr = server.http_addr();

    // Occupy the single worker with a keep-alive connection…
    let mut first = Client::new(addr, TIMEOUT);
    assert_eq!(first.get("/healthz").unwrap().status, 200);

    // …and queue two more connections with requests already on the
    // wire before shutdown begins.
    let mut queued: Vec<TcpStream> = (0..2)
        .map(|_| {
            let mut s = TcpStream::connect(addr).unwrap();
            s.set_read_timeout(Some(TIMEOUT)).unwrap();
            s.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
            s
        })
        .collect();
    std::thread::sleep(Duration::from_millis(100));

    // Shutdown must drain them (the worker frees up once the idle
    // keep-alive connection times out) before joining.
    server.shutdown();

    for s in &mut queued {
        let mut resp = String::new();
        s.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
        // Responses written during shutdown end the conversation.
        assert!(resp.contains("Connection: close"), "{resp}");
    }
}

#[test]
fn malformed_http_gets_400_and_close() {
    let server = Server::start(test_app(None), quick_config()).unwrap();
    let mut s = TcpStream::connect(server.http_addr()).unwrap();
    s.set_read_timeout(Some(TIMEOUT)).unwrap();
    s.write_all(b"THIS IS NOT HTTP\r\n\r\n").unwrap();
    let mut resp = String::new();
    s.read_to_string(&mut resp).unwrap();
    assert!(resp.starts_with("HTTP/1.1 400 Bad Request"), "{resp}");
    server.shutdown();
}

#[test]
fn keep_alive_reuses_one_connection_across_requests() {
    let server = Server::start(test_app(None), quick_config()).unwrap();
    let addr = server.http_addr();
    let mut client = Client::new(addr, TIMEOUT);
    for _ in 0..20 {
        assert_eq!(client.get("/healthz").unwrap().status, 200);
    }
    let metrics = get_once(addr, "/metrics", TIMEOUT).unwrap().text();
    // 20 keep-alive requests + this /metrics probe: 2 connections.
    assert!(metrics.contains("serve_accepted_total 2"), "{metrics}");
    server.shutdown();
}

fn whois_query(addr: SocketAddr, line: &str) -> String {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(TIMEOUT)).unwrap();
    s.write_all(line.as_bytes()).unwrap();
    s.write_all(b"\r\n").unwrap();
    let mut out = String::new();
    s.read_to_string(&mut out).unwrap();
    out
}

#[test]
fn port_43_whois_speaks_hierarchy_flags_over_a_real_socket() {
    let config = ServerConfig {
        whois_addr: Some(SocketAddr::from(([127, 0, 0, 1], 0))),
        ..quick_config()
    };
    let server = Server::start(test_app(None), config).unwrap();
    let addr = server.whois_addr().expect("whois listener enabled");

    // Plain lookup: smallest enclosing object.
    let resp = whois_query(addr, "10.0.1.77");
    assert!(resp.contains("netname:        LEAF-A"), "{resp}");
    assert!(!resp.contains("LEAF-B"));

    // -L walks the delegation chain upwards, exact match first.
    let resp = whois_query(addr, "-L 10.0.1.0 - 10.0.1.255");
    let leaf = resp.find("LEAF-A").expect("leaf present");
    let mid = resp.find("netname:        MID").expect("mid present");
    let top = resp.find("netname:        TOP").expect("top present");
    assert!(leaf < mid && leaf < top, "{resp}");

    // -m: one level of more-specifics; -M: all of them.
    let resp = whois_query(addr, "-m 10.0.0.0 - 10.255.255.255");
    assert!(resp.contains("MID") && !resp.contains("LEAF-A"), "{resp}");
    let resp = whois_query(addr, "-M 10.0.0.0 - 10.255.255.255");
    assert!(resp.contains("LEAF-A") && resp.contains("LEAF-B"), "{resp}");

    // -x: exact range only.
    let resp = whois_query(addr, "-x 10.0.1.0 - 10.0.1.255");
    assert!(resp.contains("LEAF-A"), "{resp}");
    let resp = whois_query(addr, "-x 10.0.1.0 - 10.0.1.127");
    assert!(resp.starts_with("%ERROR:101"), "{resp}");

    // %ERROR lines for bad queries and empty results.
    assert!(whois_query(addr, "-Z 10.0.0.1").starts_with("%ERROR:108"));
    assert!(whois_query(addr, "192.0.2.1").starts_with("%ERROR:101"));

    let metrics = get_once(server.http_addr(), "/metrics", TIMEOUT)
        .unwrap()
        .text();
    assert!(metrics.contains("serve_whois_queries_total 8"), "{metrics}");
    server.shutdown();
}

#[test]
fn every_response_carries_a_unique_request_id() {
    let server = Server::start(test_app(None), quick_config()).unwrap();
    let addr = server.http_addr();
    let mut ids = std::collections::BTreeSet::new();
    let mut client = Client::new(addr, TIMEOUT);
    for path in ["/healthz", "/metrics", "/rdap/ip/10.0.1.77", "/nope"] {
        let resp = client.get(path).unwrap();
        let id = resp
            .header("x-request-id")
            .unwrap_or_else(|| panic!("GET {path}: no X-Request-Id"))
            .to_string();
        assert_eq!(id.len(), 16, "ids are zero-padded 64-bit hex: {id}");
        assert!(ids.insert(id), "duplicate id on GET {path}");
    }
    // A malformed request is answered 400 — with an id too.
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(TIMEOUT)).unwrap();
    s.write_all(b"NOT HTTP AT ALL\r\n\r\n").unwrap();
    let mut resp = String::new();
    s.read_to_string(&mut resp).unwrap();
    assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
    assert!(resp.contains("X-Request-Id: "), "{resp}");
    server.shutdown();
}

#[test]
fn debug_routes_introspect_a_live_server() {
    let app = test_app(None).with_debug_routes(true);
    let server = Server::start(app, quick_config()).unwrap();
    let addr = server.http_addr();
    let mut client = Client::new(addr, TIMEOUT);

    // Generate some traffic first so the introspection has content.
    for _ in 0..5 {
        assert_eq!(client.get("/healthz").unwrap().status, 200);
    }

    // /debug/flight: a trace-check-valid JSONL ring dump that contains
    // the access-log events the requests above just wrote.
    let flight = client.get("/debug/flight").unwrap();
    assert_eq!(flight.status, 200);
    assert_eq!(flight.header("content-type"), Some("application/x-ndjson"));
    let body = flight.text();
    assert!(body.lines().any(|l| l.contains("\"message\":\"http_access\"")), "{body}");
    drywells::tracecheck::check_trace(&body)
        .unwrap_or_else(|errs| panic!("/debug/flight fails trace-check: {errs:?}"));

    // /debug/requests lists the request *currently being served* —
    // which is the /debug/requests request itself.
    let requests = client.get("/debug/requests").unwrap();
    assert_eq!(requests.status, 200);
    assert!(requests.text().contains("/debug/requests"), "{}", requests.text());

    // /debug/pool: workers/cap from the config, a requests_total that
    // covers everything served so far on this connection.
    let pool = client.get("/debug/pool").unwrap().text();
    let field = |name: &str| -> u64 {
        pool.lines()
            .find_map(|l| l.strip_prefix(&format!("{name} ")))
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or_else(|| panic!("{name} missing from:\n{pool}"))
    };
    assert_eq!(field("pool_workers"), 4);
    assert_eq!(field("pool_max_connections"), 64);
    // 5 /healthz + /debug/flight + /debug/requests are counted; the
    // /debug/pool request itself is counted only after it renders.
    assert!(field("pool_requests_total") >= 7, "{pool}");
    assert_eq!(field("pool_shed_total"), 0);
    server.shutdown();

    // With the flag off (the default), the same routes answer 404.
    let server = Server::start(test_app(None), quick_config()).unwrap();
    let mut client = Client::new(server.http_addr(), TIMEOUT);
    for path in ["/debug/flight", "/debug/requests", "/debug/pool"] {
        assert_eq!(client.get(path).unwrap().status, 404, "{path}");
    }
    server.shutdown();
}

#[test]
fn shed_responses_carry_request_ids_and_count_into_pool_stats() {
    let config = ServerConfig {
        workers: 1,
        max_connections: 1,
        read_timeout: Duration::from_secs(2),
        write_timeout: Duration::from_secs(2),
        ..ServerConfig::default()
    };
    let app = test_app(None).with_debug_routes(true);
    let server = Server::start(app, config).unwrap();
    let addr = server.http_addr();

    let _holder = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(100));
    let shed = get_once(addr, "/healthz", TIMEOUT).unwrap();
    assert_eq!(shed.status, 503);
    assert!(shed.header("x-request-id").is_some(), "shed 503 without an id");
    drop(_holder);

    // Once the slot frees, /debug/pool reports the shed connection.
    let mut pool = None;
    for _ in 0..50 {
        let resp = get_once(addr, "/debug/pool", TIMEOUT).unwrap();
        if resp.status == 200 {
            pool = Some(resp.text());
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let pool = pool.expect("/debug/pool reachable after the holder closed");
    let shed_total: u64 = pool
        .lines()
        .find_map(|l| l.strip_prefix("pool_shed_total "))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or_else(|| panic!("pool_shed_total missing from:\n{pool}"));
    assert!(shed_total >= 1, "{pool}");
    server.shutdown();
}

#[test]
fn loadgen_runs_clean_against_a_live_server() {
    let server = Server::start(test_app(None), quick_config()).unwrap();
    let report = serve::loadgen::run(&serve::loadgen::LoadgenConfig {
        addr: server.http_addr(),
        clients: 3,
        requests_per_client: 30,
        seed: 42,
        timeout: TIMEOUT,
    })
    .unwrap();
    assert!(report.is_clean(), "errors: {:?}", report.errors);
    assert_eq!(report.completed, 90);
    assert!(report.requests_per_sec > 0.0);
    assert!(report.p99_us >= report.p50_us);
    // The same seed issues the same mix: the status distribution is
    // reproducible.
    let rendered = report.render();
    assert!(rendered.contains("requests in"), "{rendered}");
    // The per-route table came back from the server's labeled
    // histograms — the RDAP-heavy mix must show an rdap row.
    let rdap = report
        .route_latency
        .iter()
        .find(|r| r.route == "rdap")
        .expect("rdap row in the per-route table");
    assert!(rdap.count > 0 && rdap.p99_us >= rdap.p50_us, "{rdap:?}");
    assert!(rendered.contains("rdap"), "{rendered}");
    server.shutdown();
}
