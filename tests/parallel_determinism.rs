//! Integration: parallel runs of the archive pipeline are
//! byte-identical to sequential runs.
//!
//! The worker pool ([`bgpsim::par`]) merges per-day results in index
//! order, so nothing downstream — MRT bytes, inferred delegations,
//! rendered figures, CSV exports — may depend on the thread count.
//! These tests pin that contract end to end.

use bgpsim::mrt::encode_day;
use bgpsim::observe::render_days_with_threads;
use bgpsim::updates::{ArchiveV2Config, CollectorArchiveV2};
use delegation::config::InferenceConfig;
use delegation::pipeline::{run_pipeline, PipelineInput};
use drywells::experiments::{build_bgp_study, fig6};
use drywells::{csv, StudyConfig};

#[test]
fn rendered_days_and_mrt_bytes_are_thread_count_invariant() {
    let config = StudyConfig::quick_seeded(42);
    let world = bgpsim::scenario::LeaseWorld::generate(&config.world);
    let span = world.span;

    let seq = render_days_with_threads(&world, &config.visibility, span, 1);
    for threads in [2, 4] {
        let par = render_days_with_threads(&world, &config.visibility, span, threads);
        assert_eq!(par, seq, "observation days differ at {threads} threads");
        // The encoded MRT-like archive is byte-identical.
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(
                encode_day(a).unwrap(),
                encode_day(b).unwrap(),
                "archive bytes differ on {}",
                a.date
            );
        }
    }
}

#[test]
fn v2_archive_and_inference_are_thread_count_invariant() {
    let config = StudyConfig::quick_seeded(43);
    let world = bgpsim::scenario::LeaseWorld::generate(&config.world);
    let span = world.span;
    let v2cfg = ArchiveV2Config::default();

    let seq_archive =
        CollectorArchiveV2::generate_with_threads(&world, &config.visibility, span, &v2cfg, 1)
            .expect("archive encodes");
    let par_archive =
        CollectorArchiveV2::generate_with_threads(&world, &config.visibility, span, &v2cfg, 4)
            .expect("archive encodes");
    for d in seq_archive.rib_dates() {
        assert_eq!(seq_archive.rib_bytes(d), par_archive.rib_bytes(d));
    }
    for d in seq_archive.update_dates() {
        assert_eq!(seq_archive.update_bytes(d), par_archive.update_bytes(d));
    }

    // Inference over sequentially- and parallel-rendered days agrees
    // delegation-for-delegation.
    let seq_days = render_days_with_threads(&world, &config.visibility, span, 1);
    let par_days = render_days_with_threads(&world, &config.visibility, span, 4);
    let cfg = InferenceConfig::baseline();
    let a = run_pipeline(PipelineInput::Days(&seq_days), span, &cfg, None);
    let b = run_pipeline(PipelineInput::Days(&par_days), span, &cfg, None);
    assert_eq!(a.days, b.days);
    assert_eq!(a.fallback_days, b.fallback_days);
    assert_eq!(a.missing_days, b.missing_days);
}

#[test]
fn figure_outputs_are_thread_count_invariant() {
    // `DRYWELLS_THREADS` pins the default pool size; figure text and
    // CSV exports must not change with it. (Thread count never affects
    // any test's *output* by design, so mutating the variable here is
    // safe even though tests share the process.)
    let config = StudyConfig::quick_seeded(44);
    std::env::set_var("DRYWELLS_THREADS", "1");
    let study_seq = build_bgp_study(&config);
    std::env::set_var("DRYWELLS_THREADS", "4");
    let study_par = build_bgp_study(&config);
    std::env::remove_var("DRYWELLS_THREADS");

    assert_eq!(study_seq.days, study_par.days);
    let fig_seq = fig6::run_with_study(&study_seq);
    let fig_par = fig6::run_with_study(&study_par);
    assert_eq!(fig_seq.rendered, fig_par.rendered);
    assert_eq!(csv::fig6_csv(&fig_seq), csv::fig6_csv(&fig_par));
}

#[test]
fn tracing_never_perturbs_outputs_at_any_pool_size() {
    // Telemetry is observation, not participation: figure text and CSV
    // bytes must be identical with tracing off, streaming to stderr,
    // or writing JSONL — at every pool size.
    let config = StudyConfig::quick_seeded(46);

    let run_fig6 = || {
        let study = build_bgp_study(&config);
        let fig = fig6::run_with_study(&study);
        (fig.rendered.clone(), csv::fig6_csv(&fig))
    };

    std::env::set_var("DRYWELLS_THREADS", "1");
    let baseline = run_fig6();

    let jsonl_buf = {
        let mut traced = Vec::new();
        for threads in ["1", "2", "4"] {
            std::env::set_var("DRYWELLS_THREADS", threads);

            // Tracing off.
            assert_eq!(run_fig6(), baseline, "untraced differs at {threads} threads");

            // Human-readable subscriber (stderr is captured by the harness).
            {
                let _guard = obs::subscribe(std::sync::Arc::new(obs::StderrSubscriber));
                assert_eq!(run_fig6(), baseline, "stderr-traced differs at {threads} threads");
            }

            // JSONL subscriber into a shared buffer.
            let (sub, buf) = obs::subscriber::shared_buffer();
            {
                let _guard = obs::subscribe(std::sync::Arc::new(sub));
                assert_eq!(run_fig6(), baseline, "jsonl-traced differs at {threads} threads");
            }
            traced.push(buf);
        }
        std::env::remove_var("DRYWELLS_THREADS");
        traced
    };

    // Every captured JSONL line parses, and the expected stages appear.
    // (Strict nesting is validated by `repro trace-check` on a real
    // single-command run; here concurrent tests share the process-wide
    // subscriber list, so a buffer may see fragments of their spans.)
    for buf in jsonl_buf {
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let mut names = std::collections::HashSet::new();
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            let v = serde_json::parse(line)
                .unwrap_or_else(|e| panic!("bad JSONL line {line:?}: {e:?}"));
            assert!(v.get("type").and_then(|t| t.as_str()).is_some(), "{line}");
            if let Some(name) = v.get("name").and_then(|n| n.as_str()) {
                names.insert(name.to_string());
            }
        }
        for expected in ["build_bgp_study", "render_days", "delegation_inference"] {
            assert!(names.contains(expected), "missing span {expected:?} in trace");
        }
    }
}

#[test]
fn served_fig6_csv_is_byte_identical_to_direct_export_at_any_pool_size() {
    // The `/experiments/fig6.csv` route must serve exactly the bytes
    // `repro fig6 --csv` writes, no matter how many workers the HTTP
    // pool runs — the serving layer may memoize but never perturb.
    let config = StudyConfig::quick_seeded(45);
    let expected = csv::fig6_csv(&drywells::experiments::fig6::run(&config));
    assert!(expected.starts_with("date,"), "{expected}");

    for workers in [1, 2, 4] {
        let app = serve::App::from_study(&config, None);
        let server = serve::Server::start(
            app,
            serve::ServerConfig {
                workers,
                ..serve::ServerConfig::default()
            },
        )
        .unwrap();
        let resp = serve::client::get_once(
            server.http_addr(),
            "/experiments/fig6.csv",
            std::time::Duration::from_secs(60),
        )
        .unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(
            resp.text(),
            expected,
            "served fig6 CSV differs at {workers} workers"
        );
        // And the memoized second hit is the same bytes again.
        let again = serve::client::get_once(
            server.http_addr(),
            "/experiments/fig6.csv",
            std::time::Duration::from_secs(60),
        )
        .unwrap();
        assert_eq!(again.text(), expected);
        server.shutdown();
    }
}
