//! Integration: parallel runs of the archive pipeline are
//! byte-identical to sequential runs.
//!
//! The worker pool ([`bgpsim::par`]) merges per-day results in index
//! order, so nothing downstream — MRT bytes, inferred delegations,
//! rendered figures, CSV exports — may depend on the thread count.
//! These tests pin that contract end to end.

use bgpsim::mrt::encode_day;
use bgpsim::observe::render_days_with_threads;
use bgpsim::updates::{ArchiveV2Config, CollectorArchiveV2};
use delegation::config::InferenceConfig;
use delegation::pipeline::{run_pipeline, run_pipeline_with_mode, PipelineInput, PipelineMode};
use drywells::experiments::{build_bgp_study, fig6};
use drywells::{csv, StudyConfig};

#[test]
fn rendered_days_and_mrt_bytes_are_thread_count_invariant() {
    let config = StudyConfig::quick_seeded(42);
    let world = bgpsim::scenario::LeaseWorld::generate(&config.world);
    let span = world.span;

    let seq = render_days_with_threads(&world, &config.visibility, span, 1);
    for threads in [2, 4] {
        let par = render_days_with_threads(&world, &config.visibility, span, threads);
        assert_eq!(par, seq, "observation days differ at {threads} threads");
        // The encoded MRT-like archive is byte-identical.
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(
                encode_day(a).unwrap(),
                encode_day(b).unwrap(),
                "archive bytes differ on {}",
                a.date
            );
        }
    }
}

#[test]
fn v2_archive_and_inference_are_thread_count_invariant() {
    let config = StudyConfig::quick_seeded(43);
    let world = bgpsim::scenario::LeaseWorld::generate(&config.world);
    let span = world.span;
    let v2cfg = ArchiveV2Config::default();

    let seq_archive =
        CollectorArchiveV2::generate_with_threads(&world, &config.visibility, span, &v2cfg, 1)
            .expect("archive encodes");
    let par_archive =
        CollectorArchiveV2::generate_with_threads(&world, &config.visibility, span, &v2cfg, 4)
            .expect("archive encodes");
    for d in seq_archive.rib_dates() {
        assert_eq!(seq_archive.rib_bytes(d), par_archive.rib_bytes(d));
    }
    for d in seq_archive.update_dates() {
        assert_eq!(seq_archive.update_bytes(d), par_archive.update_bytes(d));
    }

    // Inference over sequentially- and parallel-rendered days agrees
    // delegation-for-delegation.
    let seq_days = render_days_with_threads(&world, &config.visibility, span, 1);
    let par_days = render_days_with_threads(&world, &config.visibility, span, 4);
    let cfg = InferenceConfig::baseline();
    let a = run_pipeline(PipelineInput::Days(&seq_days), span, &cfg, None);
    let b = run_pipeline(PipelineInput::Days(&par_days), span, &cfg, None);
    assert_eq!(a.days, b.days);
    assert_eq!(a.fallback_days, b.fallback_days);
    assert_eq!(a.missing_days, b.missing_days);
}

#[test]
fn figure_outputs_are_thread_count_invariant() {
    // `DRYWELLS_THREADS` pins the default pool size; figure text and
    // CSV exports must not change with it. (Thread count never affects
    // any test's *output* by design, so mutating the variable here is
    // safe even though tests share the process.)
    let config = StudyConfig::quick_seeded(44);
    std::env::set_var("DRYWELLS_THREADS", "1");
    let study_seq = build_bgp_study(&config);
    std::env::set_var("DRYWELLS_THREADS", "4");
    let study_par = build_bgp_study(&config);
    std::env::remove_var("DRYWELLS_THREADS");

    assert_eq!(study_seq.days, study_par.days);
    let fig_seq = fig6::run_with_study(&study_seq);
    let fig_par = fig6::run_with_study(&study_par);
    assert_eq!(fig_seq.rendered, fig_par.rendered);
    assert_eq!(csv::fig6_csv(&fig_seq), csv::fig6_csv(&fig_par));
}

#[test]
fn tracing_never_perturbs_outputs_at_any_pool_size() {
    // Telemetry is observation, not participation: figure text and CSV
    // bytes must be identical with tracing off, streaming to stderr,
    // or writing JSONL — at every pool size.
    let config = StudyConfig::quick_seeded(46);

    let run_fig6 = || {
        let study = build_bgp_study(&config);
        let fig = fig6::run_with_study(&study);
        (fig.rendered.clone(), csv::fig6_csv(&fig))
    };

    std::env::set_var("DRYWELLS_THREADS", "1");
    let baseline = run_fig6();

    let jsonl_buf = {
        let mut traced = Vec::new();
        for threads in ["1", "2", "4"] {
            std::env::set_var("DRYWELLS_THREADS", threads);

            // Tracing off.
            assert_eq!(run_fig6(), baseline, "untraced differs at {threads} threads");

            // Human-readable subscriber (stderr is captured by the harness).
            {
                let _guard = obs::subscribe(std::sync::Arc::new(obs::StderrSubscriber));
                assert_eq!(run_fig6(), baseline, "stderr-traced differs at {threads} threads");
            }

            // JSONL subscriber into a shared buffer.
            let (sub, buf) = obs::subscriber::shared_buffer();
            {
                let _guard = obs::subscribe(std::sync::Arc::new(sub));
                assert_eq!(run_fig6(), baseline, "jsonl-traced differs at {threads} threads");
            }
            traced.push(buf);
        }
        std::env::remove_var("DRYWELLS_THREADS");
        traced
    };

    // Every captured JSONL line parses, and the expected stages appear.
    // (Strict nesting is validated by `repro trace-check` on a real
    // single-command run; here concurrent tests share the process-wide
    // subscriber list, so a buffer may see fragments of their spans.)
    for buf in jsonl_buf {
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let mut names = std::collections::HashSet::new();
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            let v = serde_json::parse(line)
                .unwrap_or_else(|e| panic!("bad JSONL line {line:?}: {e:?}"));
            assert!(v.get("type").and_then(|t| t.as_str()).is_some(), "{line}");
            if let Some(name) = v.get("name").and_then(|n| n.as_str()) {
                names.insert(name.to_string());
            }
        }
        for expected in ["build_bgp_study", "render_days", "delegation_inference"] {
            assert!(names.contains(expected), "missing span {expected:?} in trace");
        }
    }
}

#[test]
fn flight_recorder_never_perturbs_outputs_at_any_pool_size() {
    // The flight recorder is compiled in and always on — so the
    // determinism contract extends to it: figure text and CSV bytes
    // must be identical whether the ring is recording or paused, at
    // every pool size. And the ring's JSONL snapshot must satisfy the
    // same structural rules `repro trace-check` enforces.
    let config = StudyConfig::quick_seeded(53);

    let run_fig6 = || {
        let study = build_bgp_study(&config);
        let fig = fig6::run_with_study(&study);
        (fig.rendered.clone(), csv::fig6_csv(&fig))
    };

    let recorder = obs::flight::global();
    std::env::set_var("DRYWELLS_THREADS", "1");
    let baseline = run_fig6();
    for threads in ["1", "2", "4"] {
        std::env::set_var("DRYWELLS_THREADS", threads);
        recorder.set_paused(false);
        assert_eq!(run_fig6(), baseline, "recording differs at {threads} threads");
        recorder.set_paused(true);
        assert_eq!(run_fig6(), baseline, "paused differs at {threads} threads");
        recorder.set_paused(false);
    }
    std::env::remove_var("DRYWELLS_THREADS");

    // The always-on ring captured the pipeline's spans, and its
    // snapshot passes the exact trace-check validation rules.
    let snapshot = recorder.snapshot_jsonl();
    assert!(
        snapshot.lines().any(|l| l.contains("\"name\":\"build_bgp_study\"")),
        "pipeline spans missing from the flight ring"
    );
    let stats = drywells::tracecheck::check_trace(&snapshot)
        .unwrap_or_else(|errs| panic!("flight snapshot fails trace-check: {errs:?}"));
    assert!(stats.spans > 0, "snapshot should reconstruct spans");
}

#[test]
fn flight_recorder_accepts_concurrent_writers_from_the_worker_pool() {
    // Hammer the ring from the real `bgpsim::par` pool while snapshots
    // race the writers: every snapshot must be valid JSONL with fully
    // formed records (the per-slot copy is never observed half-written).
    let recorder = obs::flight::global();
    let done = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|s| {
        let done_ref = &done;
        s.spawn(move || {
            for _ in 0..40 {
                if done_ref.load(std::sync::atomic::Ordering::Relaxed) {
                    break;
                }
                let snap = recorder.snapshot_jsonl();
                for line in snap.lines() {
                    serde_json::parse(line)
                        .unwrap_or_else(|e| panic!("bad snapshot line {line:?}: {e:?}"));
                }
                std::thread::yield_now();
            }
        });
        let written: Vec<u64> = bgpsim::par::map_indexed(200, 4, |i| {
            obs::flight_event!(
                obs::Level::Debug,
                "par_pool_flight_write",
                index = i as u64
            );
            i as u64
        });
        assert_eq!(written.len(), 200);
        done.store(true, std::sync::atomic::Ordering::Relaxed);
    });
    // The pool's writes all landed (the ring may have wrapped, but the
    // total advanced by at least the 200 events just emitted).
    let snap = recorder.snapshot_jsonl();
    let stats = drywells::tracecheck::check_trace(&snap)
        .unwrap_or_else(|errs| panic!("post-hammer snapshot fails trace-check: {errs:?}"));
    assert!(stats.events > 0, "pool events missing from the snapshot");
}

#[test]
fn query_output_is_byte_identical_at_every_worker_count() {
    // The query engine fans file scans out over `bgpsim::par` and
    // merges per-file row blocks in index order, so CSV and JSONL
    // bodies must be byte-identical at any worker count — including
    // when a row limit truncates mid-merge.
    use bgpsim::query::{files_from_archive_v2, run_query, Filter, OutputFormat, QueryOptions};

    let config = StudyConfig::quick_seeded(51);
    let world = bgpsim::scenario::LeaseWorld::generate(&config.world);
    let archive = CollectorArchiveV2::generate(
        &world,
        &config.visibility,
        world.span,
        &ArchiveV2Config::default(),
    )
    .expect("archive encodes");
    let files = files_from_archive_v2(&archive);
    assert!(files.len() > 4, "need a multi-file archive to exercise the merge");

    let cases = [
        ("", OutputFormat::Csv, None),
        ("kind=announce|withdraw", OutputFormat::Csv, Some(100)),
        ("kind=rib", OutputFormat::Jsonl, Some(1000)),
    ];
    for (filter, format, limit) in cases {
        let opts = |threads| QueryOptions {
            filter: Filter::parse(filter).unwrap(),
            format,
            lossy: false,
            limit,
            threads,
        };
        let seq = run_query(&files, &opts(1)).expect("sequential query");
        assert!(seq.stats.rows_emitted > 0, "filter {filter:?} matched nothing");
        for threads in [2, 4] {
            let par = run_query(&files, &opts(threads)).expect("parallel query");
            assert_eq!(
                par.body, seq.body,
                "query body differs at {threads} threads (filter {filter:?})"
            );
            assert_eq!(par.stats.rows_emitted, seq.stats.rows_emitted);
        }
    }
}

#[test]
fn served_query_rows_are_byte_identical_to_cli_engine_output() {
    // `GET /query` must stream exactly the bytes `repro query` prints:
    // the served route scans the in-memory archive while the CLI scans
    // the same archive written to disk, and both go through
    // `bgpsim::query::run_query` — so the dir round-trip plus the HTTP
    // transport may not perturb a single byte.
    use bgpsim::query::{files_from_dir, run_query, Filter, OutputFormat, QueryOptions};

    let config = StudyConfig::quick_seeded(52);
    let bgp = drywells::experiments::build_bgp_study_cached(&config);
    let archive = CollectorArchiveV2::generate(
        &bgp.world,
        bgp.visibility_model(),
        bgp.world.span,
        &ArchiveV2Config::default(),
    )
    .expect("archive encodes");

    // The CLI path: archive dir on disk, scanned back.
    let dir = std::env::temp_dir().join(format!("drywells-query-cli-{}", std::process::id()));
    archive.write_dir(&dir).expect("archive writes");
    let files = files_from_dir(&dir).expect("archive dir reads");
    let filter = "kind=announce|withdraw";
    let opts = QueryOptions {
        filter: Filter::parse(filter).unwrap(),
        format: OutputFormat::Csv,
        lossy: false,
        limit: Some(500),
        threads: 2,
    };
    let cli_body = run_query(&files, &opts).expect("cli-path query").body;
    std::fs::remove_dir_all(&dir).ok();
    assert!(cli_body.lines().count() > 1, "{cli_body}");

    // The served path: same study config, same filter, over HTTP.
    let app = serve::App::from_study(&config, None);
    let server = serve::Server::start(app, serve::ServerConfig::default()).unwrap();
    let path = format!("/query?filter={}&limit=500", filter.replace('=', "%3D").replace('|', "%7C"));
    let resp = serve::client::get_once(
        server.http_addr(),
        &path,
        std::time::Duration::from_secs(60),
    )
    .unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("content-type"), Some("text/csv"));
    assert_eq!(
        resp.header("transfer-encoding"),
        Some("chunked"),
        "query bodies stream chunked to HTTP/1.1 clients"
    );
    assert_eq!(resp.text(), cli_body, "served /query differs from the CLI engine output");
    server.shutdown();
}

#[test]
fn served_fig6_csv_is_byte_identical_to_direct_export_at_any_pool_size() {
    // The `/experiments/fig6.csv` route must serve exactly the bytes
    // `repro fig6 --csv` writes, no matter how many workers the HTTP
    // pool runs — the serving layer may memoize but never perturb.
    let config = StudyConfig::quick_seeded(45);
    let expected = csv::fig6_csv(&drywells::experiments::fig6::run(&config));
    assert!(expected.starts_with("date,"), "{expected}");

    for workers in [1, 2, 4] {
        let app = serve::App::from_study(&config, None);
        let server = serve::Server::start(
            app,
            serve::ServerConfig {
                workers,
                ..serve::ServerConfig::default()
            },
        )
        .unwrap();
        let resp = serve::client::get_once(
            server.http_addr(),
            "/experiments/fig6.csv",
            std::time::Duration::from_secs(60),
        )
        .unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(
            resp.text(),
            expected,
            "served fig6 CSV differs at {workers} workers"
        );
        // And the memoized second hit is the same bytes again.
        let again = serve::client::get_once(
            server.http_addr(),
            "/experiments/fig6.csv",
            std::time::Duration::from_secs(60),
        )
        .unwrap();
        assert_eq!(again.text(), expected);
        server.shutdown();
    }
}

// ---------------------------------------------------------------------------
// Legacy oracle: an independent reimplementation of the pre-engine
// per-day rendering and MRT encoding, kept here (and only here) as the
// comparison harness for the hoisted `RenderEngine`. It deliberately
// re-derives everything per day — full event scans, fresh hash maps,
// uncached BFS — so any divergence in the engine's precomputation
// (interval index, visibility bitsets, interned paths, cached
// attribute blobs) shows up as a byte difference.
// ---------------------------------------------------------------------------
mod legacy_oracle {
    use bgpsim::bgp::{self, AsPathSegment, BgpMessage, OriginType, PathAttribute, UpdateMessage};
    use bgpsim::mrt2::{
        encode_file, Bgp4mpMessage, Mrt2Error, MrtRecord, PeerEntry, PeerIndexTable, RibEntry,
        RibIpv4Unicast, TimestampedRecord,
    };
    use bgpsim::observe::{monitor_ases, ObservationDay, RouteObservation, VisibilityModel};
    use bgpsim::scenario::LeaseWorld;
    use bgpsim::updates::ArchiveV2Config;
    use bytes::Bytes;
    use nettypes::asn::{Asn, Origin};
    use nettypes::date::Date;
    use nettypes::prefix::Prefix;
    use std::collections::{BTreeMap, HashMap};

    fn splitmix64(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9E3779B97F4A7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
        x ^ (x >> 31)
    }

    fn unit_f64(h: u64) -> f64 {
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    fn origin_key(origin: &Origin) -> u32 {
        match origin {
            Origin::Single(a) => a.0,
            Origin::Set(v) => v.first().map(|a| a.0).unwrap_or(0) ^ 0x8000_0000,
        }
    }

    fn monitor_sees(
        model: &VisibilityModel,
        prefix: Prefix,
        origin: u32,
        monitor: u16,
        day: Date,
        vis: f64,
    ) -> bool {
        let key = splitmix64(
            model
                .seed
                .wrapping_mul(0x517C_C1B7_2722_0A95)
                .wrapping_add((prefix.network() as u64) << 16)
                .wrapping_add(prefix.len() as u64)
                .wrapping_add((origin as u64) << 32)
                .wrapping_add(monitor as u64),
        );
        if unit_f64(key) >= vis {
            return false;
        }
        let daily =
            splitmix64(key ^ (day.days_since_epoch() as u64).wrapping_mul(0xA24B_AED4_963E_E407));
        unit_f64(daily) >= model.daily_flicker
    }

    /// The historical `render_day`: per-day event scan, per-day fleet
    /// pick, fresh BFS per first-seeing monitor.
    pub fn render_day(world: &LeaseWorld, model: &VisibilityModel, day: Date) -> ObservationDay {
        let monitors = monitor_ases(world, model);
        let mut routes = Vec::new();
        let mut emit = |prefix: Prefix, origin: Origin, vis: f64, class| {
            let okey = origin_key(&origin);
            let mut seen = 0u16;
            let mut first_monitor: Option<Asn> = None;
            for (i, &mon) in monitors.iter().enumerate() {
                if monitor_sees(model, prefix, okey, i as u16, day, vis) {
                    seen += 1;
                    if first_monitor.is_none() {
                        first_monitor = Some(mon);
                    }
                }
            }
            if seen == 0 {
                return;
            }
            let path = match (&origin, first_monitor) {
                (Origin::Single(o), Some(m)) => {
                    world.topology.path(m, *o).unwrap_or_default()
                }
                _ => Vec::new(),
            };
            routes.push(RouteObservation {
                prefix,
                origin,
                monitors_seen: seen,
                path: path.into(),
                class,
            });
        };
        for r in world.announced_routes_on(day) {
            emit(r.prefix, Origin::Single(r.origin), r.visibility, Some(r.class));
        }
        for m in world.moas_events_on(day) {
            emit(m.prefix, Origin::Single(m.second_origin), 0.9, None);
        }
        for e in world.as_set_events_on(day) {
            emit(e.prefix, Origin::Set(e.set.clone()), 0.9, None);
        }
        ObservationDay {
            date: day,
            num_monitors: model.num_monitors,
            routes,
        }
    }

    /// The historical `per_monitor_routes`: per-monitor hash map with
    /// min-rank/first-wins tiebreaks, sorted at the end.
    pub fn per_monitor_routes(
        world: &LeaseWorld,
        model: &VisibilityModel,
        day: Date,
    ) -> Vec<Vec<(Prefix, Origin)>> {
        let monitors = monitor_ases(world, model);
        let mut candidates: Vec<(Prefix, Origin, f64)> = Vec::new();
        for r in world.announced_routes_on(day) {
            candidates.push((r.prefix, Origin::Single(r.origin), r.visibility));
        }
        for m in world.moas_events_on(day) {
            candidates.push((m.prefix, Origin::Single(m.second_origin), 0.9));
        }
        for e in world.as_set_events_on(day) {
            candidates.push((e.prefix, Origin::Set(e.set.clone()), 0.9));
        }
        let mut per_monitor: Vec<Vec<(Prefix, Origin)>> = vec![Vec::new(); monitors.len()];
        for (mi, routes) in per_monitor.iter_mut().enumerate() {
            let mut best: HashMap<Prefix, (u64, Origin)> = HashMap::new();
            for (prefix, origin, vis) in &candidates {
                let key = origin_key(origin);
                if !monitor_sees(model, *prefix, key, mi as u16, day, *vis) {
                    continue;
                }
                let rank = splitmix64(
                    model.seed
                        ^ ((prefix.network() as u64) << 8)
                        ^ ((key as u64) << 40)
                        ^ mi as u64,
                );
                match best.get(prefix) {
                    Some((r, _)) if *r <= rank => {}
                    _ => {
                        best.insert(*prefix, (rank, origin.clone()));
                    }
                }
            }
            let mut v: Vec<(Prefix, Origin)> = best.into_iter().map(|(p, (_, o))| (p, o)).collect();
            v.sort_by_key(|(p, _)| *p);
            *routes = v;
        }
        per_monitor
    }

    fn midnight(d: Date) -> u32 {
        let secs = d.days_since_epoch().max(0) as u64 * 86_400;
        u32::try_from(secs).unwrap_or(u32::MAX)
    }

    /// The historical uncached attribute builder: one BFS per call.
    fn path_attributes(world: &LeaseWorld, peer: Asn, origin: &Origin) -> Vec<PathAttribute> {
        let segs = match origin {
            Origin::Single(o) => {
                let path = world.topology.path(peer, *o).unwrap_or_else(|| vec![peer, *o]);
                vec![AsPathSegment::Sequence(path)]
            }
            Origin::Set(set) => vec![
                AsPathSegment::Sequence(vec![peer]),
                AsPathSegment::Set(set.clone()),
            ],
        };
        vec![
            PathAttribute::Origin(OriginType::Igp),
            PathAttribute::AsPath(segs),
            PathAttribute::NextHop(0x0A00_0001),
        ]
    }

    pub fn peer_table(world: &LeaseWorld, model: &VisibilityModel) -> Vec<PeerEntry> {
        monitor_ases(world, model)
            .iter()
            .enumerate()
            .map(|(i, &asn)| PeerEntry {
                bgp_id: 0x0A00_0100 + i as u32,
                ip: 0x0A00_0200 + i as u32,
                asn,
            })
            .collect()
    }

    /// The historical RIB encoder (uncached attributes).
    pub fn encode_rib(
        world: &LeaseWorld,
        config: &ArchiveV2Config,
        peers: &[PeerEntry],
        day: Date,
        state: &[Vec<(Prefix, Origin)>],
    ) -> Result<Bytes, Mrt2Error> {
        let ts = midnight(day);
        let mut records = vec![TimestampedRecord {
            timestamp: ts,
            record: MrtRecord::PeerIndexTable(PeerIndexTable {
                collector_bgp_id: config.collector_bgp_id,
                view_name: "drywells".into(),
                peers: peers.to_vec(),
            }),
        }];
        let mut by_prefix: BTreeMap<Prefix, Vec<(u16, Origin)>> = BTreeMap::new();
        for (pi, routes) in state.iter().enumerate() {
            for (prefix, origin) in routes {
                by_prefix
                    .entry(*prefix)
                    .or_default()
                    .push((pi as u16, origin.clone()));
            }
        }
        for (seq, (prefix, holders)) in by_prefix.into_iter().enumerate() {
            let entries: Vec<RibEntry> = holders
                .into_iter()
                .map(|(pi, origin)| RibEntry {
                    peer_index: pi,
                    originated_time: ts.saturating_sub(86_400),
                    attributes: bgp::encode_attributes(&path_attributes(
                        world,
                        peers[pi as usize].asn,
                        &origin,
                    )),
                })
                .collect();
            records.push(TimestampedRecord {
                timestamp: ts,
                record: MrtRecord::RibIpv4Unicast(RibIpv4Unicast {
                    sequence: seq as u32,
                    prefix,
                    entries,
                }),
            });
        }
        encode_file(&records)
    }

    /// The historical update encoder (hash-map diff, uncached
    /// attributes).
    pub fn encode_updates(
        world: &LeaseWorld,
        config: &ArchiveV2Config,
        peers: &[PeerEntry],
        day: Date,
        prev: &[Vec<(Prefix, Origin)>],
        cur: &[Vec<(Prefix, Origin)>],
    ) -> Result<Bytes, Mrt2Error> {
        let base_ts = midnight(day);
        let mut records = Vec::new();
        for (pi, peer) in peers.iter().enumerate() {
            let prev_map: HashMap<Prefix, &Origin> = prev[pi].iter().map(|(p, o)| (*p, o)).collect();
            let cur_map: HashMap<Prefix, &Origin> = cur[pi].iter().map(|(p, o)| (*p, o)).collect();
            let mut withdrawn: Vec<Prefix> = prev_map
                .keys()
                .filter(|p| !cur_map.contains_key(p))
                .copied()
                .collect();
            withdrawn.sort();
            let mut announced: BTreeMap<String, (Origin, Vec<Prefix>)> = BTreeMap::new();
            for (p, o) in &cur_map {
                if prev_map.get(p).map(|po| po == o).unwrap_or(false) {
                    continue;
                }
                let e = announced
                    .entry(format!("{o}"))
                    .or_insert_with(|| ((*o).clone(), Vec::new()));
                e.1.push(*p);
            }
            let mut seq = 0u32;
            let mut ts = || {
                let t = base_ts + 60 + seq * 13 + pi as u32;
                seq += 1;
                t
            };
            if !withdrawn.is_empty() {
                records.push(TimestampedRecord {
                    timestamp: ts(),
                    record: MrtRecord::Bgp4mpMessage(Bgp4mpMessage {
                        peer_as: peer.asn,
                        local_as: config.collector_asn,
                        interface: 0,
                        peer_ip: peer.ip,
                        local_ip: 0x0A00_00FE,
                        message: BgpMessage::Update(UpdateMessage::withdraw(withdrawn)),
                    }),
                });
            }
            for (_, (origin, mut prefixes)) in announced {
                prefixes.sort();
                records.push(TimestampedRecord {
                    timestamp: ts(),
                    record: MrtRecord::Bgp4mpMessage(Bgp4mpMessage {
                        peer_as: peer.asn,
                        local_as: config.collector_asn,
                        interface: 0,
                        peer_ip: peer.ip,
                        local_ip: 0x0A00_00FE,
                        message: BgpMessage::Update(UpdateMessage {
                            withdrawn: Vec::new(),
                            attributes: path_attributes(world, peer.asn, &origin),
                            nlri: prefixes,
                        }),
                    }),
                });
            }
        }
        records.sort_by_key(|r| r.timestamp);
        encode_file(&records)
    }
}

#[test]
fn engine_observation_days_match_legacy_oracle_at_every_pool_size() {
    let config = StudyConfig::quick_seeded(47);
    let world = bgpsim::scenario::LeaseWorld::generate(&config.world);
    let span = world.span;

    let oracle: Vec<_> = span
        .iter()
        .map(|d| legacy_oracle::render_day(&world, &config.visibility, d))
        .collect();
    for threads in [1, 2, 4] {
        let engine_days = render_days_with_threads(&world, &config.visibility, span, threads);
        assert_eq!(engine_days.len(), oracle.len());
        for (a, b) in engine_days.iter().zip(&oracle) {
            assert_eq!(a, b, "observation day {} differs at {threads} threads", b.date);
            // Compact-MRT bytes are identical too (path interning must
            // not change the encoded surface).
            assert_eq!(
                encode_day(a).unwrap(),
                encode_day(b).unwrap(),
                "compact MRT bytes differ on {} at {threads} threads",
                b.date
            );
        }
    }
}

#[test]
fn engine_per_monitor_state_matches_legacy_oracle() {
    let config = StudyConfig::quick_seeded(48);
    let world = bgpsim::scenario::LeaseWorld::generate(&config.world);
    for d in world.span.iter().step_by(7) {
        assert_eq!(
            bgpsim::observe::per_monitor_routes(&world, &config.visibility, d),
            legacy_oracle::per_monitor_routes(&world, &config.visibility, d),
            "per-monitor state differs on {d}"
        );
    }
}

#[test]
fn engine_rfc6396_archive_bytes_match_legacy_oracle_at_every_pool_size() {
    let config = StudyConfig::quick_seeded(49);
    let world = bgpsim::scenario::LeaseWorld::generate(&config.world);
    let span = world.span;
    let v2cfg = ArchiveV2Config::default();

    // Oracle archive: legacy states, legacy (uncached) encoders.
    let days: Vec<_> = span.iter().collect();
    let states: Vec<_> = days
        .iter()
        .map(|&d| legacy_oracle::per_monitor_routes(&world, &config.visibility, d))
        .collect();
    let peers = legacy_oracle::peer_table(&world, &config.visibility);
    let rib_every = v2cfg.rib_every_days.max(1);

    for threads in [1, 2, 4] {
        let archive = CollectorArchiveV2::generate_with_threads(
            &world,
            &config.visibility,
            span,
            &v2cfg,
            threads,
        )
        .expect("archive encodes");
        assert_eq!(archive.peers(), &peers[..]);
        for (i, &d) in days.iter().enumerate() {
            if i % rib_every == 0 {
                let want = legacy_oracle::encode_rib(&world, &v2cfg, &peers, d, &states[i])
                    .expect("oracle rib encodes");
                assert_eq!(
                    archive.rib_bytes(d),
                    Some(&want),
                    "RIB bytes differ on {d} at {threads} threads"
                );
            }
            if i > 0 {
                let want = legacy_oracle::encode_updates(
                    &world,
                    &v2cfg,
                    &peers,
                    d,
                    &states[i - 1],
                    &states[i],
                )
                .expect("oracle updates encode");
                assert_eq!(
                    archive.update_bytes(d),
                    Some(&want),
                    "update bytes differ on {d} at {threads} threads"
                );
            }
        }
    }
}

#[test]
fn fig6_outputs_match_legacy_oracle_rendering_at_every_pool_size() {
    let config = StudyConfig::quick_seeded(50);
    let world = bgpsim::scenario::LeaseWorld::generate(&config.world);
    let oracle: Vec<_> = world
        .span
        .iter()
        .map(|d| legacy_oracle::render_day(&world, &config.visibility, d))
        .collect();

    let mut outputs = Vec::new();
    for threads in ["1", "2", "4"] {
        std::env::set_var("DRYWELLS_THREADS", threads);
        let study = build_bgp_study(&config);
        // The study's days are exactly the oracle's — so every figure
        // derived from them is a pure function of identical inputs.
        assert_eq!(study.days, oracle, "study days differ at {threads} threads");
        let fig = fig6::run_with_study(&study);
        outputs.push((fig.rendered.clone(), csv::fig6_csv(&fig)));
    }
    std::env::remove_var("DRYWELLS_THREADS");
    for o in &outputs[1..] {
        assert_eq!(o, &outputs[0], "fig6 text/CSV differ across pool sizes");
    }
}

// ---------------------------------------------------------------------------
// Incremental-vs-full parity: the delta-fed archive encoder, the
// persistent observation sweep, and the incremental delegation
// pipeline must be invisible — every byte identical to the retained
// full-recompute paths, at every worker count and for any chunking.
// ---------------------------------------------------------------------------

/// Every RIB and update file of two archives, for whole-archive
/// equality checks (dates and bytes both directions).
fn archive_files(
    a: &CollectorArchiveV2,
) -> (
    Vec<(nettypes::date::Date, bytes::Bytes)>,
    Vec<(nettypes::date::Date, bytes::Bytes)>,
) {
    (
        a.rib_dates()
            .map(|d| (d, a.rib_bytes(d).expect("listed rib").clone()))
            .collect(),
        a.update_dates()
            .map(|d| (d, a.update_bytes(d).expect("listed update").clone()))
            .collect(),
    )
}

#[test]
fn delta_archive_matches_full_recompute_oracle_at_every_pool_size() {
    let config = StudyConfig::quick_seeded(47);
    let world = bgpsim::scenario::LeaseWorld::generate(&config.world);
    let v2cfg = ArchiveV2Config::default();

    let oracle = CollectorArchiveV2::generate_full_recompute_with_threads(
        &world,
        &config.visibility,
        world.span,
        &v2cfg,
        1,
    )
    .expect("oracle encodes");
    for threads in [1, 2, 4] {
        let delta = CollectorArchiveV2::generate_with_threads(
            &world,
            &config.visibility,
            world.span,
            &v2cfg,
            threads,
        )
        .expect("delta path encodes");
        assert_eq!(
            archive_files(&delta),
            archive_files(&oracle),
            "delta archive differs from the full-recompute oracle at {threads} threads"
        );
    }
}

#[test]
fn sweep_observation_days_match_day_view_across_faults() {
    // The persistent sweep must serve the same observation surface as
    // a from-scratch `day_view` on every day — including across a
    // dropped update file (forward-fallback region) where the sweep
    // memoizes the decoded fallback RIB.
    let config = StudyConfig::quick_seeded(48);
    let world = bgpsim::scenario::LeaseWorld::generate(&config.world);
    let mut archive = CollectorArchiveV2::generate(
        &world,
        &config.visibility,
        world.span,
        &ArchiveV2Config::default(),
    )
    .expect("archive encodes");
    let days: Vec<_> = world.span.iter().collect();
    let dropped = days[days.len() / 2];
    assert!(archive.drop_update_file(dropped), "mid-span update exists");

    let mut sweep = archive.sweep();
    for &d in &days {
        let delta = sweep.advance(d);
        let view = archive.day_view(d);
        match (&delta, &view) {
            (Ok(_), Ok(view)) => assert_eq!(
                sweep.observation_day(d),
                view.to_observation_day(),
                "sweep surface differs from day_view on {d}"
            ),
            (Err(a), Err(b)) => assert_eq!(format!("{a}"), format!("{b}")),
            _ => panic!("sweep and day_view disagree on {d}: {delta:?} vs day_view {:?}", view.is_ok()),
        }
    }
}

#[test]
fn incremental_pipeline_matches_full_recompute_at_every_pool_size() {
    let config = StudyConfig::quick_seeded(49);
    let world = bgpsim::scenario::LeaseWorld::generate(&config.world);
    let mut archive = CollectorArchiveV2::generate(
        &world,
        &config.visibility,
        world.span,
        &ArchiveV2Config::default(),
    )
    .expect("archive encodes");
    // A dropped update file puts fallback days in play too.
    let days: Vec<_> = world.span.iter().collect();
    archive.drop_update_file(days[days.len() / 3]);

    let cfg = InferenceConfig::baseline();
    let oracle = run_pipeline_with_mode(
        PipelineInput::MrtArchive(&archive),
        world.span,
        &cfg,
        None,
        PipelineMode::FullRecompute,
    );
    for threads in ["1", "2", "4"] {
        std::env::set_var("DRYWELLS_THREADS", threads);
        let inc = run_pipeline_with_mode(
            PipelineInput::MrtArchive(&archive),
            world.span,
            &cfg,
            None,
            PipelineMode::Incremental,
        );
        assert_eq!(inc.days, oracle.days, "delegations differ at {threads} threads");
        assert_eq!(inc.fallback_days, oracle.fallback_days);
        assert_eq!(inc.missing_days, oracle.missing_days);
        assert_eq!(inc.intra_org_removed, oracle.intra_org_removed);
    }
    std::env::remove_var("DRYWELLS_THREADS");
}

#[test]
fn fig6_csv_identical_between_incremental_and_full_recompute() {
    // End to end over the decoded-archive surface: figure text and CSV
    // from the incremental pipeline must match the forced
    // full-recompute oracle byte for byte.
    let config = StudyConfig::quick_seeded(51);
    let study = build_bgp_study(&config);
    let archive = CollectorArchiveV2::generate(
        &study.world,
        &config.visibility,
        study.world.span,
        &ArchiveV2Config::default(),
    )
    .expect("archive encodes");

    let full = fig6::run_with_inputs_mode(
        &study,
        || PipelineInput::MrtArchive(&archive),
        PipelineMode::FullRecompute,
    );
    let inc = fig6::run_with_inputs_mode(
        &study,
        || PipelineInput::MrtArchive(&archive),
        PipelineMode::Incremental,
    );
    assert_eq!(inc.rendered, full.rendered, "figure text differs");
    assert_eq!(csv::fig6_csv(&inc), csv::fig6_csv(&full), "fig6 CSV differs");
}

/// World + oracle archive shared across the chunk-boundary property's
/// generated cases (the world build dominates; the property varies
/// only the chunking).
fn chunk_fixture() -> &'static (StudyConfig, bgpsim::scenario::LeaseWorld, CollectorArchiveV2) {
    use std::sync::OnceLock;
    static FIXTURE: OnceLock<(StudyConfig, bgpsim::scenario::LeaseWorld, CollectorArchiveV2)> =
        OnceLock::new();
    FIXTURE.get_or_init(|| {
        let config = StudyConfig::quick_seeded(52);
        let world = bgpsim::scenario::LeaseWorld::generate(&config.world);
        let oracle = CollectorArchiveV2::generate_with_threads(
            &world,
            &config.visibility,
            world.span,
            &ArchiveV2Config::default(),
            1,
        )
        .expect("oracle encodes");
        (config, world, oracle)
    })
}

proptest::proptest! {
    #[test]
    fn prop_chunk_boundaries_never_change_archive_bytes(
        raw_cuts in proptest::collection::vec(proptest::prelude::any::<u16>(), 0..5),
    ) {
        let (config, world, oracle) = chunk_fixture();
        let n = world.span.iter().count();
        let mut cuts: Vec<usize> = raw_cuts.iter().map(|c| *c as usize % (n + 1)).collect();
        cuts.push(0);
        cuts.push(n);
        cuts.sort_unstable();
        cuts.dedup();
        let ranges: Vec<std::ops::Range<usize>> =
            cuts.windows(2).map(|w| w[0]..w[1]).collect();
        let chunked = CollectorArchiveV2::generate_with_chunks(
            world,
            &config.visibility,
            world.span,
            &ArchiveV2Config::default(),
            &ranges,
        )
        .expect("chunked path encodes");
        proptest::prop_assert_eq!(
            archive_files(&chunked),
            archive_files(oracle),
            "archive bytes changed under chunking {:?}",
            ranges
        );
    }
}
