//! Ground-truth recall/precision integration tests: the simulator
//! knows the true leases, so the inference pipeline can be held to
//! quantitative quality bands, and the paper's robustness claims can
//! be checked (e.g. the visibility threshold being uncritical between
//! 10 % and 90 %).

use delegation::config::InferenceConfig;
use delegation::eval::evaluate_against_truth;
use delegation::pipeline::{run_pipeline, PipelineInput};
use drywells::experiments::build_bgp_study;
use drywells::StudyConfig;

#[test]
fn extended_pipeline_quality_bands() {
    let study = build_bgp_study(&StudyConfig::quick());
    let result = run_pipeline(
        PipelineInput::Days(&study.days),
        study.world.span,
        &InferenceConfig::extended(),
        Some(&study.as2org),
    );
    let eval = evaluate_against_truth(&study.world, &result);
    assert!(
        eval.precision() > 0.9,
        "precision {:.3} below band",
        eval.precision()
    );
    assert!(eval.recall() > 0.7, "recall {:.3} below band", eval.recall());
}

#[test]
fn visibility_threshold_is_uncritical_between_10_and_90_percent() {
    // §4 footnote 2: "As long as the monitor threshold is chosen
    // between 10% and 90% the difference in inferred delegations is
    // negligible."
    let study = build_bgp_study(&StudyConfig::quick());
    let mut totals = Vec::new();
    for threshold in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let cfg = InferenceConfig {
            visibility_threshold: threshold,
            ..InferenceConfig::baseline()
        };
        let result = run_pipeline(PipelineInput::Days(&study.days), study.world.span, &cfg, None);
        let total: usize = result.days.iter().map(Vec::len).sum();
        totals.push((threshold, total));
    }
    let max = totals.iter().map(|&(_, t)| t).max().unwrap() as f64;
    let min = totals.iter().map(|&(_, t)| t).min().unwrap() as f64;
    assert!(
        (max - min) / max < 0.10,
        "threshold sensitivity too high: {totals:?}"
    );
}

#[test]
fn each_extension_helps_on_its_axis() {
    let study = build_bgp_study(&StudyConfig::quick());
    let span = study.world.span;
    let run = |cfg: &InferenceConfig| {
        let as2org = cfg.filter_intra_org.then_some(&study.as2org);
        let result = run_pipeline(PipelineInput::Days(&study.days), span, cfg, as2org);
        evaluate_against_truth(&study.world, &result)
    };
    let base = run(&InferenceConfig::baseline());
    let only_iv = run(&InferenceConfig {
        filter_intra_org: true,
        ..InferenceConfig::baseline()
    });
    let only_v = run(&InferenceConfig {
        consistency_fill_days: Some(10),
        ..InferenceConfig::baseline()
    });
    // (iv) removes intra-org false positives ⇒ precision strictly up,
    // recall unchanged.
    assert!(only_iv.precision() > base.precision());
    assert_eq!(only_iv.true_positives, base.true_positives);
    // (v) fills gaps ⇒ recall strictly up.
    assert!(only_v.recall() > base.recall());
}

#[test]
fn onoff_heavy_worlds_need_the_fill_rule() {
    // Crank the on-off fraction: the baseline recall collapses while
    // the fill rule recovers most of it.
    let mut config = StudyConfig::quick_seeded(99);
    config.world.bgp_visible_fraction = 0.25;
    config.world.onoff_fraction = 0.9;
    let study = build_bgp_study(&config);
    let span = study.world.span;
    let base = run_pipeline(
        PipelineInput::Days(&study.days),
        span,
        &InferenceConfig::baseline(),
        None,
    );
    let filled = run_pipeline(
        PipelineInput::Days(&study.days),
        span,
        &InferenceConfig {
            consistency_fill_days: Some(10),
            ..InferenceConfig::baseline()
        },
        None,
    );
    let eb = evaluate_against_truth(&study.world, &base);
    let ef = evaluate_against_truth(&study.world, &filled);
    assert!(
        ef.recall() - eb.recall() > 0.1,
        "fill rule gained only {:.3} recall ({:.3} → {:.3})",
        ef.recall() - eb.recall(),
        eb.recall(),
        ef.recall()
    );
}
