//! Fault-injection integration: archive gaps, corrupted files, and
//! rate-limited services must degrade gracefully, never panic, and —
//! where the paper defines a fallback — produce near-identical
//! results.

use bgpsim::collector::CollectorArchive;
use bgpsim::mrt::{decode_day, encode_day};
use bytes::Bytes;
use delegation::config::InferenceConfig;
use delegation::eval::evaluate_against_truth;
use delegation::pipeline::{run_pipeline, PipelineInput};
use drywells::experiments::build_bgp_study;
use drywells::StudyConfig;
use rdap::database::{DbBuildConfig, WhoisDb};
use rdap::pipeline::{extract_delegations, PipelineConfig};
use rdap::server::RdapServer;

#[test]
fn archive_gaps_barely_move_the_results() {
    let study = build_bgp_study(&StudyConfig::quick_seeded(5));
    let span = study.world.span;

    let mut clean = CollectorArchive::new();
    for d in &study.days {
        clean.store(d);
    }
    // Damage ~10 % of days: drop some, corrupt others.
    let mut damaged = clean.clone();
    let n = study.days.len();
    for i in (3..n).step_by(17) {
        damaged.drop_day(study.days[i].date);
    }
    for i in (9..n).step_by(23) {
        let date = study.days[i].date;
        let mut bytes = encode_day(&study.days[i]).unwrap().to_vec();
        let cut = bytes.len() / 3;
        bytes.truncate(cut);
        damaged.store_raw(date, Bytes::from(bytes));
    }

    let cfg = InferenceConfig::extended();
    let clean_run = run_pipeline(
        PipelineInput::Archive(&clean),
        span,
        &cfg,
        Some(&study.as2org),
    );
    let damaged_run = run_pipeline(
        PipelineInput::Archive(&damaged),
        span,
        &cfg,
        Some(&study.as2org),
    );
    assert!(!damaged_run.fallback_days.is_empty());

    let e_clean = evaluate_against_truth(&study.world, &clean_run);
    let e_damaged = evaluate_against_truth(&study.world, &damaged_run);
    assert!(
        (e_clean.recall() - e_damaged.recall()).abs() < 0.05,
        "recall moved too much: {:.3} vs {:.3}",
        e_clean.recall(),
        e_damaged.recall()
    );
    assert!(
        e_damaged.precision() > 0.85,
        "damaged-archive precision {:.3}",
        e_damaged.precision()
    );
}

#[test]
fn fully_corrupted_archive_yields_empty_but_sane_result() {
    let study = build_bgp_study(&StudyConfig::quick_seeded(6));
    let span = study.world.span;
    let mut archive = CollectorArchive::new();
    for d in &study.days {
        archive.store_raw(d.date, Bytes::from_static(b"not an mrt file"));
    }
    let result = run_pipeline(
        PipelineInput::Archive(&archive),
        span,
        &InferenceConfig::baseline(),
        None,
    );
    assert_eq!(result.missing_days.len() as i64, span.num_days());
    assert!(result.days.iter().all(Vec::is_empty));
}

#[test]
fn mrt_bitflips_never_panic_and_roundtrip_detects() {
    let study = build_bgp_study(&StudyConfig::quick_seeded(7));
    let day = &study.days[10];
    let bytes = encode_day(day).unwrap();
    // Exhaustive single-byte truncations.
    for cut in 0..bytes.len().min(600) {
        let _ = decode_day(&bytes[..cut]);
    }
    // Deterministic bit flips across the file.
    let mut flipped = 0;
    for i in (0..bytes.len()).step_by(7) {
        let mut b = bytes.to_vec();
        b[i] ^= 0x40;
        if let Ok(decoded) = decode_day(&b) {
            // A successful decode of a flipped file must differ OR the
            // flip hit a byte that round-trips equivalently (e.g. a
            // float-free field encoding the same value) — but it must
            // never equal the original if a semantic field changed.
            let _ = decoded;
        }
        flipped += 1;
    }
    assert!(flipped > 0);
}

#[test]
fn rdap_outage_mid_extraction_is_recoverable() {
    let study = build_bgp_study(&StudyConfig::quick_seeded(8));
    let as_of = study.world.span.end;
    let db = WhoisDb::build_from_world(&study.world, as_of, &DbBuildConfig::default());

    // A brutally small rate budget forces many pauses.
    let strict = RdapServer::with_rate_limit(db.clone(), 3);
    let (with_pauses, stats) = extract_delegations(&db, &strict, &PipelineConfig::default());
    assert!(stats.rate_limit_pauses > 5);

    let relaxed = RdapServer::new(db.clone());
    let (without, _) = extract_delegations(&db, &relaxed, &PipelineConfig::default());
    assert_eq!(with_pauses, without, "pauses must not change the result");
}
