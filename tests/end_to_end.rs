//! End-to-end integration: run every experiment at quick scale and
//! check the combined report carries the paper's qualitative story.

use drywells::{run_all, StudyConfig};

#[test]
fn run_all_produces_complete_report() {
    let report = run_all(&StudyConfig::quick());
    // Every section header present.
    for section in [
        "Table 1: IPv4 exhaustion timeline",
        "Figure 1: price per IP",
        "Figure 2: market transfers",
        "Figure 3: inter-RIR transfers",
        "Figure 4: advertised leasing prices",
        "Figure 5: RPKI consistency rules",
        "Figure 6: BGP delegations",
        "S4: BGP vs RDAP coverage",
        "S6: amortization",
    ] {
        assert!(report.contains(section), "missing section {section:?}");
    }
    // Landmark facts from the paper surface in the report.
    assert!(report.contains("2019-11-25"), "RIPE run-out date");
    assert!(report.contains("no significant difference"), "regional price claim");
    assert!(report.contains("consolidation phase from 2019"));
    assert!(report.contains("Heficed: $0.65 → $0.40"));
    assert!(report.contains("chosen rule (M=10, N=0)"));
    assert!(report.contains("extended (ours)"));
    assert!(report.contains("paper: ~1.85%"));
    assert!(report.contains("brokers report customer averages"));
}

#[test]
fn quick_study_is_deterministic() {
    let a = run_all(&StudyConfig::quick_seeded(7));
    let b = run_all(&StudyConfig::quick_seeded(7));
    assert_eq!(a, b, "same seed must reproduce the identical report");
}

#[test]
fn different_seeds_vary_data_but_not_conclusions() {
    for seed in [11u64, 12, 13] {
        let cfg = StudyConfig::quick_seeded(seed);
        let f1 = drywells::experiments::fig1::run(&cfg);
        assert!(
            f1.regional.iter().all(|c| c.p_value > 0.01),
            "seed {seed}: regional difference appeared (p values {:?})",
            f1.regional.iter().map(|c| c.p_value).collect::<Vec<_>>()
        );
        let f6 = drywells::experiments::fig6::run(&cfg);
        assert!(
            f6.extended_summary.count_diff_std < f6.baseline_summary.count_diff_std,
            "seed {seed}: extensions failed to reduce day-to-day variance"
        );
        assert!(f6.extended_eval.f1() > f6.baseline_eval.f1(), "seed {seed}");
    }
}
