//! Per-experiment integration checks: each runner produces non-empty,
//! well-formed output carrying its experiment's key markers.

use drywells::experiments::*;
use drywells::StudyConfig;

#[test]
fn table1_markers() {
    let t = table1::run();
    assert!(t.rendered.contains("Down to last /8"));
    assert!(t.rendered.contains("Start of Recovery"));
    assert!(t.rendered.lines().count() >= 7);
}

#[test]
fn fig1_grid_covers_window() {
    let r = fig1::run(&StudyConfig::quick());
    let quarters: std::collections::BTreeSet<&str> = r
        .boxes
        .iter()
        .map(|b| b.quarter_label.as_str())
        .collect();
    assert!(quarters.contains("2016Q1"));
    assert!(quarters.contains("2020Q2"));
    // 18 quarters × 3 regions × up to 7 size classes, at least half
    // the (quarter, region) cells populated.
    assert!(r.boxes.len() > 100, "only {} boxes", r.boxes.len());
    // Every box has coherent order statistics.
    for b in &r.boxes {
        assert!(b.stats.min <= b.stats.q1);
        assert!(b.stats.q1 <= b.stats.median);
        assert!(b.stats.median <= b.stats.q3);
        assert!(b.stats.q3 <= b.stats.max);
        assert!(b.stats.count > 0);
    }
}

#[test]
fn fig2_counts_nonnegative_and_dated() {
    let r = fig2::run(&StudyConfig::quick());
    for c in &r.counts {
        assert!(c.count > 0, "empty bins should not be emitted");
        assert!(c.addresses >= 256);
        assert!(c.quarter_label.len() == 6, "label {}", c.quarter_label);
    }
}

#[test]
fn fig3_flows_have_median_blocks() {
    let r = fig3::run(&StudyConfig::quick());
    for f in &r.flows {
        assert!(f.count > 0);
        assert!(f.median_block >= 256);
        assert!(f.addresses >= f.median_block);
        assert!(f.year >= 2012 && f.year <= 2020);
    }
}

#[test]
fn fig4_is_pure_paper_data() {
    let a = fig4::run();
    let b = fig4::run();
    assert_eq!(a.rendered, b.rendered, "Figure 4 is deterministic data");
    assert_eq!(a.catalog.len(), 21);
    assert!(a.sample_dates.len() >= 8);
}

#[test]
fn fig5_has_all_curves() {
    let r = fig5::run(&StudyConfig::quick());
    assert_eq!(r.curves.len(), 4, "N ∈ {{0,1,2,3}}");
    let ms: Vec<usize> = r.curves[0].points.iter().map(|(m, _)| *m).collect();
    assert!(ms.contains(&10), "the chosen rule's M must be on the grid");
    assert!(r.chosen_rule_fail_rate >= 0.0);
}

#[test]
fn fig6_metrics_per_day() {
    let cfg = StudyConfig::quick();
    let r = fig6::run(&cfg);
    assert_eq!(
        r.baseline_metrics.len() as i64,
        cfg.world.span.num_days()
    );
    assert_eq!(r.baseline_metrics.len(), r.extended_metrics.len());
    for (b, e) in r.baseline_metrics.iter().zip(&r.extended_metrics) {
        assert_eq!(b.date, e.date);
        assert!(b.slash24_share <= 1.0 && e.slash24_share <= 1.0);
    }
}

#[test]
fn s4_report_counts_consistent() {
    let r = s4_coverage::run(&StudyConfig::quick());
    assert!(r.coverage.intersection <= r.coverage.bgp_addresses);
    assert!(r.coverage.intersection <= r.coverage.rdap_addresses);
    assert!(r.rdap_stats.delegations == r.coverage.rdap_delegations);
}

#[test]
fn s6_scenario_grid() {
    let r = s6_amortization::run();
    assert_eq!(r.scenarios.len(), 5);
    assert!(r.scenarios.iter().any(|s| s.months().is_none()));
}
